"""Statistical significance of a deviation value (§4, Definition 4.1).

The significance of ``δ_M(D1, D2)`` is, informally, the probability
that a deviation this large would arise if both blocks were drawn from
the same underlying generating process.  We estimate it by a
**permutation bootstrap**: pool the two blocks' tuples, repeatedly
resplit the pool at random into pseudo-blocks of the original sizes,
re-measure the *fixed* GCR regions on each pseudo-pair, and report the
fraction of resampled deviations that fall below the observed one.  A
significance of 0.99 means the observed deviation exceeds 99% of the
same-process resamples — the blocks are almost surely different.

A cheap χ²-based approximation is also provided for callers that need
many pairwise significances (the compact-sequence miner over dozens of
blocks) without the bootstrap's repeated scans.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

import numpy as np

from repro.core.blocks import Block, make_block
from repro.deviation.focus import DeviationFunction


def bootstrap_significance(
    deviation_fn: DeviationFunction,
    block_a: Block,
    block_b: Block,
    model_a,
    model_b,
    observed: float | None = None,
    resamples: int = 30,
    seed: int = 0,
) -> float:
    """Permutation-bootstrap significance of the observed deviation.

    Args:
        deviation_fn: The FOCUS instantiation in use.
        block_a: First block.
        block_b: Second block.
        model_a: Model induced from ``block_a``.
        model_b: Model induced from ``block_b``.
        observed: The observed deviation; recomputed when omitted.
        resamples: Number of pooled resplits.
        seed: RNG seed (results are deterministic given it).

    Returns:
        The fraction of resampled deviations strictly below the
        observed one, in ``[0, 1]``.
    """
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples}")
    if observed is None:
        observed = deviation_fn.deviation(block_a, model_a, block_b, model_b).value
    regions = deviation_fn.gcr(model_a, model_b)
    pool = list(block_a.iter_records()) + list(block_b.iter_records())
    size_a = len(block_a)
    rng = random.Random(seed)

    below = 0
    for _ in range(resamples):
        rng.shuffle(pool)
        pseudo_a = make_block(1, pool[:size_a])
        pseudo_b = make_block(2, pool[size_a:])
        measures_a = deviation_fn.measures(regions, pseudo_a, None)
        measures_b = deviation_fn.measures(regions, pseudo_b, None)
        if deviation_fn.aggregate(measures_a, measures_b) < observed:
            below += 1
    return below / resamples


def chi2_region_significance(
    counts_a: Sequence[int],
    total_a: int,
    counts_b: Sequence[int],
    total_b: int,
) -> float:
    """χ² approximation of the deviation significance from region counts.

    Treats each GCR region as an independent 2×2 contingency table
    (region present / absent × block A / block B), sums the χ²
    statistics, and converts through the χ² CDF with one degree of
    freedom per region.  Regions of itemset models overlap, so this is
    a heuristic upper bound on significance — adequate for ranking
    pairwise similarities, which is all the compact-sequence miner
    needs — and orders of magnitude cheaper than the bootstrap.

    Returns:
        ``P(χ²_df <= statistic)`` in ``[0, 1]``; values near 1 mean the
        blocks are almost surely different.
    """
    from scipy import stats

    counts_a = np.asarray(counts_a, dtype=float)
    counts_b = np.asarray(counts_b, dtype=float)
    if len(counts_a) != len(counts_b):
        raise ValueError("region count vectors must align")
    if len(counts_a) == 0 or total_a <= 0 or total_b <= 0:
        return 0.0
    statistic = 0.0
    for na, nb in zip(counts_a, counts_b):
        pooled = (na + nb) / (total_a + total_b)
        if pooled <= 0 or pooled >= 1:
            continue
        expected_a = total_a * pooled
        expected_b = total_b * pooled
        variance_a = expected_a * (1 - pooled)
        variance_b = expected_b * (1 - pooled)
        statistic += (na - expected_a) ** 2 / max(variance_a, 1e-12)
        statistic += (nb - expected_b) ** 2 / max(variance_b, 1e-12)
    df = len(counts_a)
    return float(stats.chi2.cdf(statistic, df))
