"""Runtime maintainer contracts — the dynamic half of demonlint.

The DEMON paper states the ``A_M`` conventions in prose: ``add_block``
may mutate its model so callers that still need the old model must
``clone`` first (GEMM §3.2 keeps ``w`` divergent copies of one model
alive), and every maintainer exposes exactly the four operations GEMM
is parameterized by.  ``tools/demonlint`` proves those contracts hold
statically (rules DML001/DML002); this module makes them fail fast at
run time too:

* :func:`maintainer_contract` — class decorator validating, at class
  creation, that the four ``A_M`` operations exist with the canonical
  signatures.  It also marks the class so demonlint recognizes
  structural maintainers that do not inherit from
  :class:`~repro.core.maintainer.IncrementalModelMaintainer`.
* :func:`pure_unless_cloned` — method decorator for
  ``add_block``/``delete_block``.  When contracts are *armed* (tests
  arm them; production leaves them disarmed for zero overhead) it
  tracks models whose identity was retired by a mutating update and
  raises :class:`ContractViolation` if such a stale model is fed back
  in without an intervening ``clone``.

Arm with :func:`arm` (the test suite does this in ``conftest.py``) or
by setting ``REPRO_CONTRACTS=1`` in the environment before import.
"""

from __future__ import annotations

import copy
import functools
import inspect
import os
import pickle
import weakref
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any, TypeVar, overload


class ContractViolation(TypeError):
    """A maintainer broke one of the paper's ``A_M`` conventions."""


class SanitizerViolation(RuntimeError):
    """A runtime sanitizer caught a lifecycle/atomicity bug.

    Each sanitizer is the dynamic twin of a demonlint flow rule: chunk
    views poisoned after ``backend.close()`` correspond to DML014/015,
    :func:`worker_entry` payload pickling to DML017, and
    :func:`exception_atomic` checkpoint comparison to DML018.  The
    agreement suite asserts the static and dynamic verdicts line up on
    the same fixtures.
    """


_ARMED: bool = os.environ.get("REPRO_CONTRACTS", "") not in ("", "0", "false")


def arm() -> None:
    """Enable the runtime checks (cheap identity bookkeeping per call)."""
    global _ARMED
    _ARMED = True


def disarm() -> None:
    """Disable the runtime checks (the production default)."""
    global _ARMED
    _ARMED = False


def contracts_armed() -> bool:
    """Whether :func:`pure_unless_cloned` guards are currently active."""
    return _ARMED


_SANITIZERS: bool = os.environ.get("REPRO_SANITIZERS", "") not in (
    "", "0", "false",
)


def arm_sanitizers() -> None:
    """Enable the runtime sanitizers (chunk-view poisoning, worker
    payload pickling, checkpoint atomicity snapshots).

    Unlike :func:`arm`, sanitizers are not free when idle: armed
    backends wrap every yielded chunk and :func:`exception_atomic`
    deep-copies checkpoints, so they are meant for tests and debugging
    sessions, not production loops.
    """
    global _SANITIZERS
    _SANITIZERS = True


def disarm_sanitizers() -> None:
    """Disable the runtime sanitizers (the production default)."""
    global _SANITIZERS
    _SANITIZERS = False


def sanitizers_armed() -> bool:
    """Whether the runtime sanitizers are currently active."""
    return _SANITIZERS


@contextmanager
def exception_atomic(obj: Any, label: str | None = None) -> Iterator[Any]:
    """Assert ``obj``'s checkpointed state survives a failing body.

    The dynamic twin of demonlint DML018: on entry (armed only) the
    object's ``state_dict()`` is deep-copied; if the body raises and
    the live ``state_dict()`` no longer matches the snapshot, the
    original exception is chained into a :class:`SanitizerViolation` —
    the failed operation corrupted state the next checkpoint would
    persist.  Disarmed, the body runs bare.
    """
    if not _SANITIZERS:
        yield obj
        return
    name = label or type(obj).__name__
    before = copy.deepcopy(obj.state_dict())
    try:
        yield obj
    except SanitizerViolation:
        raise
    except BaseException as exc:
        if obj.state_dict() != before:
            raise SanitizerViolation(
                f"{name}.state_dict() changed across a raising operation "
                f"({type(exc).__name__}: {exc}); checkpointed state must "
                f"be clone-before-commit (DML018)"
            ) from exc
        raise


def worker_entry(fn: TMethod) -> TMethod:
    """Mark (and, armed, sanitize) a function shipped to worker processes.

    The ``__demonlint_worker_entry__`` tag lets the static pass
    (DML017) audit the function's transitive captures even when no
    submit site is visible.  When sanitizers are armed, each call
    round-trips its arguments through :mod:`pickle` first — the same
    boundary ``spawn`` workers cross — so an unpicklable payload fails
    loudly at the call site instead of deep inside a pool.
    """

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        if _SANITIZERS:
            try:
                pickle.dumps((args, kwargs))
            except Exception as exc:
                raise SanitizerViolation(
                    f"worker entry {fn.__name__}() received a payload "
                    f"that cannot cross the process boundary "
                    f"({type(exc).__name__}: {exc}); pass picklable "
                    f"state and rebuild handles inside the worker "
                    f"(DML017)"
                ) from exc
        return fn(*args, **kwargs)

    wrapper.__demonlint_worker_entry__ = True  # type: ignore[attr-defined]
    return wrapper  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Interleaving sanitizer: critical sections, ownership, write barrier
# ----------------------------------------------------------------------

TMethodVar = TypeVar("TMethodVar", bound=Callable[..., Any])

#: Labels of the critical sections the current thread of control has
#: entered, innermost last.  Maintained unconditionally (one list
#: append) so arming the sanitizers mid-region still sees the region.
_CRITICAL: list[str] = []

#: Depth of :func:`worker_scope` nesting in this process: > 0 while a
#: worker task body runs (including the ``workers=1`` inline path).
_WORKER_SCOPE: int = 0

#: Ownership tags for backend handles: handle -> (scope, claiming pid).
#: Weak so a tag never outlives (or pins) its handle; handles with
#: ``__slots__`` participate as long as they keep ``__weakref__``.
_OWNERS: "weakref.WeakKeyDictionary[Any, tuple[str, int]]" = (
    weakref.WeakKeyDictionary()
)


class _CriticalRegion:
    """One named wait-free region; context manager and decorator."""

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        self.label = label

    def __enter__(self) -> "_CriticalRegion":
        _CRITICAL.append(self.label)
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        _CRITICAL.pop()

    def __call__(self, fn: TMethodVar) -> TMethodVar:
        label = self.label

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            _CRITICAL.append(label)
            try:
                return fn(*args, **kwargs)
            finally:
                _CRITICAL.pop()

        wrapper.__demonlint_critical_section__ = label  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]


@overload
def critical_section(arg: str) -> _CriticalRegion: ...


@overload
def critical_section(arg: TMethodVar) -> TMethodVar: ...


def critical_section(arg: "str | Callable[..., Any]") -> Any:
    """Mark a wait-free region — the static anchor for demonlint DML024.

    Usable three ways::

        @critical_section                      # label = function name
        def _publish_tier(self): ...

        @critical_section("tier-map")          # explicit label
        def _publish_tier(self): ...

        with critical_section("tier-map"):     # statement form
            ...

    Inside a marked region, DML024 statically rejects reachable
    blocking operations (tier moves, compression, vault spill,
    executor waits), and :func:`blocking_call` raises at run time when
    the sanitizers are armed.  The marker itself does **not** take a
    lock — it names a region the author promises is wait-free so both
    halves of the toolchain can hold them to it.
    """
    if callable(arg):
        return _CriticalRegion(getattr(arg, "__name__", "critical"))(arg)
    return _CriticalRegion(str(arg))


def in_critical_section() -> str | None:
    """The innermost active critical-section label, or ``None``."""
    return _CRITICAL[-1] if _CRITICAL else None


def blocking_call(name: str) -> None:
    """Declare that the caller is about to block (the DML024 twin).

    Tier demotions/promotions, whole-column compression, and model
    spill call this before doing the slow work.  Disarmed it is one
    boolean test; armed it raises :class:`SanitizerViolation` when the
    declaration happens inside a :func:`critical_section` region —
    the dynamic counterpart of demonlint DML024.
    """
    if _SANITIZERS and _CRITICAL:
        raise SanitizerViolation(
            f"blocking operation {name}() entered inside critical "
            f"section '{_CRITICAL[-1]}'; tier moves, compression, and "
            f"spill must run outside wait-free regions (DML024)"
        )


@contextmanager
def worker_scope() -> Iterator[None]:
    """Mark the dynamic extent of one worker task body.

    :func:`repro.parallel.pool._run_task` wraps every task in this
    scope — including the ``workers=1`` inline path, which is how the
    tier-1 suite exercises the :func:`write_barrier` single-writer
    check without spawning subprocesses.
    """
    global _WORKER_SCOPE
    _WORKER_SCOPE += 1
    try:
        yield
    finally:
        _WORKER_SCOPE -= 1


def in_worker_scope() -> bool:
    """Whether a worker task body is executing in this process."""
    return _WORKER_SCOPE > 0


def claim_ownership(handle: Any, scope: str | None = None) -> None:
    """Tag ``handle`` with its owning scope and pid (armed only).

    Backends claim themselves at construction: a handle built inside a
    :func:`worker_scope` is worker-owned (the worker rebuilt it from a
    spec — the sanctioned pattern), anything else is parent-owned.
    Un-weak-referenceable handles silently opt out, mirroring
    :class:`_IdentitySet`.
    """
    if not _SANITIZERS:
        return
    if scope is None:
        scope = "worker" if _WORKER_SCOPE else "parent"
    try:
        _OWNERS[handle] = (scope, os.getpid())
    except TypeError:
        pass


def ownership_of(handle: Any) -> tuple[str, int] | None:
    """The ``(scope, pid)`` tag of ``handle``, or ``None`` if untagged."""
    try:
        return _OWNERS.get(handle)
    except TypeError:
        return None


def write_barrier(handle: Any, operation: str) -> None:
    """Assert single-writer discipline before mutating ``handle``.

    The dynamic twin of demonlint DML020/DML021: a parent-owned handle
    must not be written from inside a worker task body (the mutation
    happens on a per-process copy and silently never reaches the
    parent), and no handle may be written from a process other than
    the one that claimed it (a forked child inheriting the parent's
    handle).  Disarmed, one boolean test.
    """
    if not _SANITIZERS:
        return
    tag = ownership_of(handle)
    if tag is None:
        return
    scope, owner_pid = tag
    if scope == "parent" and _WORKER_SCOPE:
        raise SanitizerViolation(
            f"{type(handle).__name__}.{operation}() mutates a "
            f"parent-owned handle inside a worker task body; the write "
            f"lands on the worker's copy and never reaches the parent "
            f"— ship a spec, rebuild in the worker, return deltas "
            f"(DML020, single-writer)"
        )
    if owner_pid != os.getpid():
        raise SanitizerViolation(
            f"{type(handle).__name__}.{operation}() mutates a handle "
            f"claimed by pid {owner_pid} from pid {os.getpid()}; a "
            f"forked process inherited a handle it does not own — "
            f"re-check os.getpid() and rebuild per process (DML021, "
            f"single-writer)"
        )


#: The paper's ``A_M`` interface: method name -> required parameter
#: names after ``self``.  Kept in sync with demonlint rule DML001.
REQUIRED_SIGNATURES: dict[str, tuple[str, ...]] = {
    "empty_model": (),
    "build": ("blocks",),
    "add_block": ("model", "block"),
    "clone": ("model",),
}

#: Present only on deletable maintainers (§3.2.4); validated when defined.
OPTIONAL_SIGNATURES: dict[str, tuple[str, ...]] = {
    "delete_block": ("model", "block"),
}

TClass = TypeVar("TClass", bound=type)
TMethod = TypeVar("TMethod", bound=Callable[..., Any])


def _required_positional(fn: Callable[..., Any]) -> tuple[str, ...]:
    signature = inspect.signature(fn)
    names = []
    for parameter in signature.parameters.values():
        if parameter.kind not in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            break
        if parameter.default is not inspect.Parameter.empty:
            break
        names.append(parameter.name)
    return tuple(names)


def _validate_method(cls: type, name: str, expected: tuple[str, ...]) -> None:
    fn = getattr(cls, name, None)
    if fn is None or not callable(fn):
        raise ContractViolation(
            f"{cls.__name__} does not implement {name}() required by the "
            f"A_M maintainer contract (paper §3.2)"
        )
    if getattr(fn, "__isabstractmethod__", False):
        raise ContractViolation(
            f"{cls.__name__}.{name} is still abstract; a concrete "
            f"maintainer must implement it"
        )
    required = _required_positional(fn)
    want = ("self",) + expected
    if required != want:
        raise ContractViolation(
            f"{cls.__name__}.{name} must accept ({', '.join(want)}); "
            f"required positional parameters are ({', '.join(required)})"
        )


def maintainer_contract(cls: TClass) -> TClass:
    """Class decorator: verify the ``A_M`` interface at class creation.

    Checks that ``empty_model``/``build``/``add_block``/``clone`` (and
    ``delete_block`` when present) exist, are concrete, and use the
    canonical parameter names — the same conditions demonlint rule
    DML001 proves statically, enforced here for maintainers constructed
    or monkey-patched at run time.  The decorated class is tagged with
    ``__demonlint_maintainer__`` so the static pass recognizes
    structural maintainers that bypass the ABC.
    """
    for name, expected in REQUIRED_SIGNATURES.items():
        _validate_method(cls, name, expected)
    for name, expected in OPTIONAL_SIGNATURES.items():
        if getattr(cls, name, None) is not None:
            _validate_method(cls, name, expected)
    cls.__demonlint_maintainer__ = True
    return cls


class _IdentitySet:
    """A weak set keyed by object identity (models may be unhashable)."""

    __slots__ = ("_refs",)

    def __init__(self) -> None:
        self._refs: dict[int, weakref.ref[Any]] = {}

    def add(self, obj: Any) -> None:
        key = id(obj)

        def _cleanup(_ref: weakref.ref[Any], refs: dict[int, weakref.ref[Any]] = self._refs, key: int = key) -> None:
            refs.pop(key, None)

        try:
            self._refs[key] = weakref.ref(obj, _cleanup)
        except TypeError:
            pass  # un-weakref-able models opt out of runtime tracking

    def __contains__(self, obj: Any) -> bool:
        ref = self._refs.get(id(obj))
        return ref is not None and ref() is obj


def _consumed_set(maintainer: Any) -> _IdentitySet:
    consumed = getattr(maintainer, "_demonlint_consumed", None)
    if consumed is None:
        consumed = _IdentitySet()
        try:
            maintainer._demonlint_consumed = consumed
        except AttributeError:
            pass  # slotted maintainer: fall back to per-call set
    return consumed


def pure_unless_cloned(method: TMethod) -> TMethod:
    """Guard a mutating ``A_M`` operation against stale-model reuse.

    ``A_M(m, Dj)`` may mutate and retire ``m``; a caller that passes a
    model to ``add_block`` and later feeds the *old* reference back in
    (instead of the returned model or a fresh ``clone``) has silently
    diverged from rebuild-from-scratch — the aliasing bug incremental
    maintainers are most prone to.  When contracts are armed, models
    retired by an update (the call returned a *different* object) are
    remembered per maintainer; reusing one raises
    :class:`ContractViolation`.  Disarmed, the wrapper is a single
    boolean check.
    """

    @functools.wraps(method)
    def wrapper(self: Any, model: Any, block: Any, *args: Any, **kwargs: Any) -> Any:
        if not _ARMED:
            return method(self, model, block, *args, **kwargs)
        consumed = _consumed_set(self)
        if model in consumed:
            raise ContractViolation(
                f"{type(self).__name__}.{method.__name__}: the "
                f"{type(model).__name__} passed in was already consumed by "
                f"a previous update; clone() the model before re-using it "
                f"(GEMM §3.2 keeps divergent copies alive)"
            )
        result = method(self, model, block, *args, **kwargs)
        if result is not model:
            consumed.add(model)
        return result

    wrapper.__demonlint_mutates__ = True  # type: ignore[attr-defined]
    return wrapper  # type: ignore[return-value]
