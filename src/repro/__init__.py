"""repro — a full reproduction of DEMON (Ganti, Gehrke & Ramakrishnan,
ICDE 2000): mining and monitoring systematically evolving data.

Public API overview
-------------------

Core (``repro.core``)
    :class:`Block`, :class:`Snapshot`, the data span dimension
    (:class:`UnrestrictedWindow` / :class:`MostRecentWindow`), block
    selection sequences (:class:`WindowIndependentBSS` /
    :class:`WindowRelativeBSS`), the generic most-recent-window
    maintainer :class:`GEMM`, and the checkpointable one-stop driver
    :class:`MiningSession` (with :class:`DemonMonitor` as its legacy
    facade).

Frequent itemsets (``repro.itemsets``)
    Apriori, the BORDERS incremental maintainer with PT-Scan / ECUT /
    ECUT+ support counters, per-block TID-lists, and the FUP baseline.

Clustering (``repro.clustering``)
    Cluster features, the CF-tree, BIRCH, and incremental BIRCH+.

Deviation & patterns (``repro.deviation``, ``repro.patterns``)
    The FOCUS deviation framework, statistical significance, the
    M-similarity predicate, and compact-sequence pattern discovery.

Data generators (``repro.datagen``)
    Quest transactions (AS94), Gaussian cluster data (AGGR98), and the
    synthetic 21-day web-proxy trace.

Quickstart
----------

>>> from repro import DemonMonitor, MostRecentWindow, WindowRelativeBSS
>>> from repro.itemsets import BordersMaintainer
>>> monitor = DemonMonitor(
...     BordersMaintainer(minsup=0.02, counter="ecut"),
...     span=MostRecentWindow(w=7),
...     bss=WindowRelativeBSS([1, 0, 1, 0, 1, 0, 1]),
... )
"""

from repro.core import (
    GEMM,
    Block,
    CheckpointError,
    DemonMonitor,
    GEMMUpdateReport,
    MiningSession,
    MonitorReport,
    MostRecentWindow,
    Snapshot,
    UnrestrictedWindow,
    UnrestrictedWindowMaintainer,
    WindowIndependentBSS,
    WindowRelativeBSS,
    make_block,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Block",
    "Snapshot",
    "make_block",
    "WindowIndependentBSS",
    "WindowRelativeBSS",
    "UnrestrictedWindow",
    "MostRecentWindow",
    "UnrestrictedWindowMaintainer",
    "GEMM",
    "GEMMUpdateReport",
    "DemonMonitor",
    "MonitorReport",
    "MiningSession",
    "CheckpointError",
]
