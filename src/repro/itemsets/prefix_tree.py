"""Prefix tree for counting candidate itemset supports (Mueller 95).

BORDERS organizes the itemsets whose supports it must count in a prefix
tree and scans the dataset once, incrementing the count of every stored
itemset contained in each transaction (the paper calls this counting
procedure *PT-Scan*).  Items along any root-to-node path are strictly
increasing, so a transaction (also sorted) is matched by a bounded
recursive descent rather than by enumerating its subsets.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable

from repro.itemsets.itemset import Itemset, Transaction


class _Node:
    """One prefix-tree node; terminal nodes carry a support counter."""

    __slots__ = ("children", "count", "terminal")

    def __init__(self) -> None:
        self.children: dict[int, _Node] = {}
        self.count = 0
        self.terminal = False


class PrefixTree:
    """A prefix tree over a fixed collection of canonical itemsets.

    Args:
        itemsets: The itemsets whose supports will be counted.  They
            must be canonical (sorted, duplicate-free); the empty
            itemset is rejected.
    """

    def __init__(self, itemsets: Iterable[Itemset] = ()):
        self._root = _Node()
        self._size = 0
        self._max_depth = 0
        for itemset in itemsets:
            self.insert(itemset)

    def __len__(self) -> int:
        return self._size

    def insert(self, itemset: Itemset) -> None:
        """Add one itemset to the tree (idempotent)."""
        if not itemset:
            raise ValueError("cannot count the empty itemset")
        node = self._root
        for item in itemset:
            child = node.children.get(item)
            if child is None:
                child = _Node()
                node.children[item] = child
            node = child
        if not node.terminal:
            node.terminal = True
            self._size += 1
            self._max_depth = max(self._max_depth, len(itemset))

    def count_transaction(self, transaction: Transaction) -> None:
        """Increment the count of every stored itemset ``⊆ transaction``."""
        self._descend(self._root, transaction, 0)

    def _descend(self, node: _Node, transaction: Transaction, start: int) -> None:
        if node.terminal:
            node.count += 1
        if not node.children:
            return
        for i in range(start, len(transaction)):
            child = node.children.get(transaction[i])
            if child is not None:
                self._descend(child, transaction, i + 1)

    def count_dataset(self, transactions: Iterable[Transaction]) -> None:
        """Count every stored itemset against a stream of transactions."""
        for transaction in transactions:
            self.count_transaction(transaction)

    def counts(self) -> dict[Itemset, int]:
        """Return the accumulated count of every stored itemset."""
        result: dict[Itemset, int] = {}
        stack: list[tuple[_Node, Itemset]] = [(self._root, ())]
        while stack:
            node, path = stack.pop()
            if node.terminal:
                result[path] = node.count
            for item, child in node.children.items():
                stack.append((child, path + (item,)))
        return result

    def reset_counts(self) -> None:
        """Zero every stored itemset's count."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            node.count = 0
            stack.extend(node.children.values())


def count_supports(
    itemsets: Collection[Itemset], transactions: Iterable[Transaction]
) -> dict[Itemset, int]:
    """Convenience one-shot: counts of ``itemsets`` over ``transactions``."""
    if not itemsets:
        return {}
    tree = PrefixTree(itemsets)
    tree.count_dataset(transactions)
    return tree.counts()
