"""Negative-border computation and maintenance rules.

``NB⁻(D, κ)`` is the set of infrequent itemsets all of whose proper
subsets are frequent (paper §3).  BORDERS' detection phase relies on
the invariant that any itemset newly becoming frequent must itself — or
one of its subsets — sit in the current negative border, so keeping the
border consistent is what makes incremental maintenance sound.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable, Set

from repro.itemsets.itemset import Itemset, generate_candidates, proper_subsets


def border_candidates(frequent: Collection[Itemset]) -> set[Itemset]:
    """Every itemset that could sit on the negative border of ``frequent``.

    These are (a) single items not in the frequent set, and (b) the
    Apriori candidates generated from the frequent itemsets that are not
    themselves frequent.  Caller supplies the universe of single items
    separately via :func:`negative_border` when (a) matters.
    """
    frequent_set = set(frequent)
    by_size: dict[int, set[Itemset]] = {}
    for itemset in frequent_set:
        by_size.setdefault(len(itemset), set()).add(itemset)
    result: set[Itemset] = set()
    for size, level in by_size.items():
        for candidate in generate_candidates(level):
            if candidate not in frequent_set:
                result.add(candidate)
    return result


def negative_border(
    frequent: Collection[Itemset], items: Iterable[int]
) -> set[Itemset]:
    """Compute ``NB⁻`` given the frequent itemsets and the item universe.

    Args:
        frequent: The frequent itemsets (canonical tuples).
        items: Every item that occurs in the dataset; infrequent single
            items belong to the border (their only proper subset is the
            empty set, which is frequent by convention).
    """
    frequent_set = set(frequent)
    border = border_candidates(frequent_set)
    for item in items:
        singleton: Itemset = (item,)
        if singleton not in frequent_set:
            border.add(singleton)
    return border


def is_on_border(itemset: Itemset, frequent: Set[Itemset]) -> bool:
    """Whether ``itemset`` satisfies the border membership condition.

    True iff the itemset is not frequent while all its proper subsets
    are (singletons qualify whenever they are infrequent).
    """
    if itemset in frequent:
        return False
    if len(itemset) == 1:
        return True
    return all(subset in frequent for subset in proper_subsets(itemset))


def check_border_invariant(
    frequent: Set[Itemset], border: Set[Itemset]
) -> list[str]:
    """Validate the L/NB⁻ invariants; returns human-readable violations.

    Used by property-based tests and by the BORDERS maintainer's debug
    assertions.  The invariants checked:

    1. ``L`` is downward closed (every subset of a frequent itemset is
       frequent).
    2. Border members are not frequent and have all subsets frequent.
    3. ``L`` and ``NB⁻`` are disjoint.
    """
    problems: list[str] = []
    overlap = frequent & border
    if overlap:
        problems.append(f"L and NB- overlap on {sorted(overlap)[:5]}")
    for itemset in frequent:
        for subset in proper_subsets(itemset):
            if subset and subset not in frequent:
                problems.append(
                    f"L not downward closed: {itemset} frequent but {subset} is not"
                )
    for itemset in border:
        if not is_on_border(itemset, frequent):
            problems.append(f"{itemset} in NB- violates border condition")
    return problems
