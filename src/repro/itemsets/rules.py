"""Association rules on top of the maintained frequent-itemset model.

DEMON's motivating analyst (the Demons'R Us marketing department, §2.2)
consumes *association rules*, not raw itemsets.  This module derives
rules from a :class:`~repro.itemsets.model.FrequentItemsetModel` — and
because the model is maintained incrementally, the rule set refreshes
after every block at no extra counting cost: every support needed for
confidence and lift is already tracked in ``L``.

Definitions (Agrawal et al.): a rule ``X ⇒ Y`` (X, Y disjoint, X ∪ Y
frequent) holds with *support* ``σ(X ∪ Y)`` and *confidence*
``σ(X ∪ Y) / σ(X)``.  *Lift* is confidence over ``σ(Y)`` — > 1 means a
positive correlation.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from itertools import combinations

from repro.itemsets.itemset import Itemset
from repro.itemsets.model import FrequentItemsetModel


@dataclass(frozen=True)
class AssociationRule:
    """One rule ``antecedent ⇒ consequent`` with its quality measures.

    Attributes:
        antecedent: The rule body ``X`` (canonical itemset).
        consequent: The rule head ``Y`` (canonical itemset, disjoint).
        support: Fraction of transactions containing ``X ∪ Y``.
        confidence: ``σ(X ∪ Y) / σ(X)``.
        lift: ``confidence / σ(Y)``.
    """

    antecedent: Itemset
    consequent: Itemset
    support: float
    confidence: float
    lift: float

    @property
    def itemset(self) -> Itemset:
        """The underlying frequent itemset ``X ∪ Y``."""
        return tuple(sorted(self.antecedent + self.consequent))

    def __str__(self) -> str:
        return (
            f"{set(self.antecedent)} => {set(self.consequent)} "
            f"(sup={self.support:.3f}, conf={self.confidence:.3f}, "
            f"lift={self.lift:.2f})"
        )


def _splits(itemset: Itemset) -> Iterator[tuple[Itemset, Itemset]]:
    """All (antecedent, consequent) partitions with non-empty sides."""
    for size in range(1, len(itemset)):
        for antecedent in combinations(itemset, size):
            consequent = tuple(x for x in itemset if x not in antecedent)
            yield antecedent, consequent


def generate_rules(
    model: FrequentItemsetModel,
    min_confidence: float = 0.5,
    min_lift: float | None = None,
) -> list[AssociationRule]:
    """Derive all rules meeting the thresholds from the model.

    Only tracked supports are used — no data access.  The standard
    confidence-monotonicity prune applies: if ``X ⇒ Y`` fails the
    confidence bar, so does every rule with a smaller antecedent and
    larger consequent from the same itemset, so consequents are grown
    level-wise per itemset.

    Args:
        model: A maintained frequent-itemset model (counts in ``L``).
        min_confidence: Minimum rule confidence in ``(0, 1]``.
        min_lift: Optional minimum lift filter.

    Returns:
        Rules sorted by descending confidence, then support.
    """
    if not 0 < min_confidence <= 1:
        raise ValueError(
            f"minimum confidence must be in (0, 1], got {min_confidence}"
        )
    total = model.n_transactions
    if total == 0:
        return []
    rules: list[AssociationRule] = []
    for itemset, count in model.frequent.items():
        if len(itemset) < 2:
            continue
        itemset_support = count / total
        for antecedent, consequent in _splits(itemset):
            antecedent_count = model.frequent.get(antecedent)
            consequent_count = model.frequent.get(consequent)
            if not antecedent_count or not consequent_count:
                # Both sides are subsets of a frequent itemset, hence
                # frequent; a miss means the model is inconsistent.
                continue
            confidence = count / antecedent_count
            if confidence < min_confidence:
                continue
            lift = confidence / (consequent_count / total)
            if min_lift is not None and lift < min_lift:
                continue
            rules.append(
                AssociationRule(
                    antecedent=antecedent,
                    consequent=consequent,
                    support=itemset_support,
                    confidence=confidence,
                    lift=lift,
                )
            )
    rules.sort(key=lambda r: (-r.confidence, -r.support, r.antecedent, r.consequent))
    return rules


@dataclass
class RuleDiff:
    """How the rule set changed between two model snapshots.

    Attributes:
        emerged: Rules present now but not before.
        vanished: Rules present before but not now.
        strengthened: Rules whose confidence rose by at least ``delta``.
        weakened: Rules whose confidence fell by at least ``delta``.
    """

    emerged: list[AssociationRule]
    vanished: list[AssociationRule]
    strengthened: list[tuple[AssociationRule, float]]
    weakened: list[tuple[AssociationRule, float]]


def diff_rules(
    before: list[AssociationRule],
    after: list[AssociationRule],
    delta: float = 0.05,
) -> RuleDiff:
    """Compare two rule sets (the analyst's block-over-block view).

    Rules are keyed by (antecedent, consequent); confidence changes of
    at least ``delta`` are reported as strengthened / weakened.
    """
    before_map = {(r.antecedent, r.consequent): r for r in before}
    after_map = {(r.antecedent, r.consequent): r for r in after}
    emerged = [r for key, r in after_map.items() if key not in before_map]
    vanished = [r for key, r in before_map.items() if key not in after_map]
    strengthened = []
    weakened = []
    for key in before_map.keys() & after_map.keys():
        change = after_map[key].confidence - before_map[key].confidence
        if change >= delta:
            strengthened.append((after_map[key], change))
        elif change <= -delta:
            weakened.append((after_map[key], change))
    return RuleDiff(
        emerged=emerged,
        vanished=vanished,
        strengthened=strengthened,
        weakened=weakened,
    )
