"""ECUT+ 2-itemset TID-list materialization (§3.1.1).

ECUT+ improves on ECUT when extra disk space is available: counting an
itemset ``X`` from TID-lists of *itemsets* ``Y1 ∪ ... ∪ Yk = X`` is
faster when the ``Yi`` are larger than single items, because their
lists are shorter and fewer of them are needed.  Choosing which lists
to materialize optimally is the NP-hard view-materialization problem on
AND-OR graphs, so the paper uses a heuristic:

    For a new block, materialize the TID-lists of all frequent
    2-itemsets of the current model; if their total size exceeds the
    space budget ``M``, keep as many as fit, preferring itemsets with
    higher overall support (they are more likely to be subsets of
    future counting targets).

:class:`PairTidListStore` implements that heuristic per block, with the
same byte-metered fetch interface as the single-item store.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable, Mapping

import numpy as np

from repro.core.blocks import Block
from repro.itemsets.itemset import Itemset, Transaction
from repro.itemsets.kernels import pack_rows
from repro.itemsets.tidlist import TID_BYTES, TID_DTYPE
from repro.storage.iostats import IOStats, IOStatsRegistry

#: A pair (frequent 2-itemset) is a length-2 canonical tuple.
Pair = tuple[int, int]


class PairTidListStore:
    """Per-block TID-lists of selected frequent 2-itemsets.

    Args:
        registry: I/O registry to charge fetches to; private if omitted.
        counter_name: Counter name within the registry.
    """

    def __init__(
        self,
        registry: IOStatsRegistry | None = None,
        counter_name: str = "pair_tidlist_fetch",
    ):
        self.registry = registry if registry is not None else IOStatsRegistry()
        self._stats = self.registry.get(counter_name)
        self._lists: dict[int, dict[Pair, np.ndarray]] = {}
        self._base_tids: dict[int, int] = {}
        self._packed: dict[int, tuple[dict[Pair, int], np.ndarray, np.ndarray]] = {}

    @property
    def stats(self) -> IOStats:
        """The counter fetches are charged to."""
        return self._stats

    def materialize_block(
        self,
        block: Block[Transaction],
        pairs: Collection[Pair],
        overall_supports: Mapping[Itemset, int],
        budget_bytes: int | None = None,
        base_tid: int = 0,
    ) -> list[Pair]:
        """Build per-block TID-lists for (a budgeted subset of) ``pairs``.

        Args:
            block: The arriving block; scanned once.
            pairs: Candidate 2-itemsets, typically the frequent
                2-itemsets of the current model ``L(D[1, t], κ)``.
            overall_supports: Overall support counts ``σ_D`` used to
                order pairs when the budget forces a choice (higher
                support materialized first, per the paper's heuristic).
            budget_bytes: The space budget ``M`` for this block; ``None``
                means unbounded (materialize everything).
            base_tid: Global tid of the block's first transaction; must
                match the single-item store so intersections align.

        Returns:
            The pairs actually materialized, in choice order.
        """
        if block.block_id in self._lists:
            raise ValueError(
                f"pair TID-lists for block {block.block_id} already built"
            )
        wanted = set(pairs)
        buffers: dict[Pair, list[int]] = {pair: [] for pair in wanted}
        # One scan of the block: enumerate each transaction's pairs that
        # are wanted.  Transactions are short (tens of items), so the
        # quadratic inner loop is bounded.
        tid = base_tid
        for chunk in block.iter_chunks():
            for transaction in chunk:
                n = len(transaction)
                for i in range(n):
                    for j in range(i + 1, n):
                        pair = (transaction[i], transaction[j])
                        if pair in wanted:
                            buffers[pair].append(tid)
                tid += 1

        ordered = sorted(
            wanted,
            key=lambda pair: (-overall_supports.get(pair, 0), pair),
        )
        chosen: list[Pair] = []
        used = 0
        block_lists: dict[Pair, np.ndarray] = {}
        for pair in ordered:
            cost = TID_BYTES * len(buffers[pair])
            if budget_bytes is not None and used + cost > budget_bytes:
                continue
            tids = np.asarray(buffers[pair], dtype=TID_DTYPE)
            # Fetches alias this array; freeze it so a caller mutating a
            # fetched (or intersection-returned) list cannot corrupt the
            # store in place.
            tids.flags.writeable = False
            block_lists[pair] = tids
            used += cost
            chosen.append(pair)
        self._lists[block.block_id] = block_lists
        self._base_tids[block.block_id] = base_tid
        return chosen

    def has_block(self, block_id: int) -> bool:
        """Whether this block has been processed (even if nothing fit)."""
        return block_id in self._lists

    def available(self, block_id: int) -> set[Pair]:
        """The pairs materialized for one block."""
        return set(self._lists.get(block_id, ()))

    def has_pair(self, block_id: int, pair: Pair) -> bool:
        """Whether one pair's list exists for one block."""
        return pair in self._lists.get(block_id, ())

    def pair_count(self, block_id: int, pair: Pair) -> int:
        """Length of one pair list (catalog metadata, not charged)."""
        return len(self._lists[block_id][pair])

    def lists_view(self, block_id: int) -> Mapping[Pair, np.ndarray]:
        """Direct (read-only by convention) view of one block's lists.

        Same contract as :meth:`TidListStore.lists_view`: the batched
        engine meters its own aggregate reads, so every list taken from
        the view must be charged by the caller.
        """
        return self._lists.get(block_id, {})

    def packed_rows(
        self, block_id: int, block_size: int
    ) -> tuple[dict[Pair, int], np.ndarray, np.ndarray]:
        """Lazily-built (pair → row, bitset rows, lengths) per block.

        The batched counting engine's bulk access path, mirroring
        :meth:`TidListStore.packed_rows`: the rows are packed once per
        block (``ceil(block_size / 8)`` bytes per pair), dropped with
        the block, and fetch charges stay metered per batch by the
        engine.  Pair lists are always sorted arrays, so the physical
        size of row ``r`` is ``TID_BYTES * lens[r]``.
        """
        packed = self._packed.get(block_id)
        if packed is None:
            block_lists = self._lists.get(block_id)
            if block_lists is None:
                # Not materialized yet: a transient empty result, not
                # cached — it would go stale when the block arrives.
                width = (block_size + 7) >> 3
                return (
                    {},
                    np.zeros((0, width), dtype=np.uint8),
                    np.zeros(0, dtype=np.int64),
                )
            base = self._base_tids.get(block_id, 0)
            pairs = list(block_lists)
            index = {pair: r for r, pair in enumerate(pairs)}
            arrays = list(block_lists.values())
            lens = np.fromiter(
                (len(a) for a in arrays), dtype=np.int64, count=len(arrays)
            )
            matrix = pack_rows(arrays, base, block_size)
            matrix.flags.writeable = False
            lens.flags.writeable = False
            packed = (index, matrix, lens)
            self._packed[block_id] = packed
        return packed

    def fetch(self, block_id: int, pair: Pair) -> np.ndarray:
        """Fetch one pair's TID-list for one block, charging the read."""
        tids = self._lists[block_id][pair]
        self._stats.record_read(TID_BYTES * len(tids))
        return tids

    def nbytes(self, block_id: int) -> int:
        """Logical size of one block's materialized pair lists."""
        return TID_BYTES * sum(len(t) for t in self._lists.get(block_id, {}).values())

    def total_nbytes(self) -> int:
        """Logical size of all materialized pair lists."""
        return sum(self.nbytes(block_id) for block_id in self._lists)

    def drop_block(self, block_id: int) -> None:
        """Discard a block's pair lists."""
        self._lists.pop(block_id, None)
        self._base_tids.pop(block_id, None)
        self._packed.pop(block_id, None)

    def __getstate__(self) -> dict[str, object]:
        # The packed-row cache is derived from ``_lists`` and rebuilt
        # lazily; persisting it would make checkpoint bytes depend on
        # which process happened to count which block (the sharded
        # counting path packs rows worker-side).
        state = dict(self.__dict__)
        state["_packed"] = {}
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        state.setdefault("_packed", {})
        self.__dict__.update(state)


def plan_cover(
    itemset: Itemset, available_pairs: Collection[Pair]
) -> tuple[list[Pair], list[int]]:
    """Choose pairs + leftover single items whose union is ``itemset``.

    A greedy matching: walk the itemset's items in order and pair each
    yet-uncovered item with the nearest uncovered partner for which a
    materialized pair exists.  Remaining items fall back to single-item
    TID-lists.  Pairs beat singles because a pair's list is never longer
    than either item's list, and one fetch replaces two.

    Returns:
        (pairs, singles) such that the pairs are disjoint, contain only
        items of ``itemset``, and pairs ∪ singles = itemset.
    """
    available = set(available_pairs)
    uncovered = list(itemset)
    pairs: list[Pair] = []
    singles: list[int] = []
    while uncovered:
        item = uncovered.pop(0)
        partner_index = None
        for idx, other in enumerate(uncovered):
            candidate = (item, other) if item < other else (other, item)
            if candidate in available:
                partner_index = idx
                break
        if partner_index is None:
            singles.append(item)
        else:
            other = uncovered.pop(partner_index)
            pairs.append((item, other) if item < other else (other, item))
    return pairs, singles
