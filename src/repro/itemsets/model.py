"""The frequent-itemset model maintained by BORDERS.

The model is the pair ``(L(D, κ), NB⁻(D, κ))`` with absolute support
counts, together with the bookkeeping an incremental maintainer needs:
the number of transactions seen, the item universe observed, and the
identifiers of the blocks the model was extracted from (so a support
counter knows which blocks to touch when new candidates must be
counted).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.itemsets.apriori import MiningResult
from repro.itemsets.itemset import Itemset, minimum_count


@dataclass
class FrequentItemsetModel:
    """``L`` + ``NB⁻`` with counts over the selected blocks.

    Attributes:
        minsup: Minimum support threshold ``κ``.
        n_transactions: Number of transactions across selected blocks.
        frequent: ``L(D, κ)`` mapping itemset → absolute count.
        border: ``NB⁻(D, κ)`` mapping itemset → absolute count.
        items: Item universe observed in the selected blocks.
        selected_block_ids: Blocks the model is extracted from, in
            ascending order.
    """

    minsup: float
    n_transactions: int = 0
    frequent: dict[Itemset, int] = field(default_factory=dict)
    border: dict[Itemset, int] = field(default_factory=dict)
    items: set[int] = field(default_factory=set)
    selected_block_ids: list[int] = field(default_factory=list)

    @classmethod
    def from_mining_result(
        cls, result: MiningResult, block_ids: list[int]
    ) -> "FrequentItemsetModel":
        """Wrap an Apriori run output into a maintainable model."""
        items = {itemset[0] for itemset in result.frequent if len(itemset) == 1}
        items.update(itemset[0] for itemset in result.border if len(itemset) == 1)
        return cls(
            minsup=result.minsup,
            n_transactions=result.n_transactions,
            frequent=dict(result.frequent),
            border=dict(result.border),
            items=items,
            selected_block_ids=sorted(block_ids),
        )

    def __getstate__(self) -> dict[str, object]:
        """Canonical pickle state for byte-identical checkpoints.

        Set iteration order follows the hash-table layout its insertion
        history produced, and serial vs sharded maintenance insert into
        ``items`` in different orders — equal models would pickle to
        different bytes.  Rebuilding the set from its sorted elements
        makes the layout a function of the contents alone (the same
        reason ``selected_block_ids`` is kept sorted).
        """
        state = dict(self.__dict__)
        state["items"] = set(sorted(self.items))
        return state

    @property
    def min_count(self) -> int:
        """The absolute count threshold at the current dataset size."""
        if self.n_transactions == 0:
            return 1
        return minimum_count(self.minsup, self.n_transactions)

    def support(self, itemset: Itemset) -> float:
        """Support fraction of a tracked itemset (0.0 if untracked)."""
        count = self.frequent.get(itemset)
        if count is None:
            count = self.border.get(itemset, 0)
        if self.n_transactions == 0:
            return 0.0
        return count / self.n_transactions

    def is_frequent(self, itemset: Itemset) -> bool:
        """Whether the itemset is in ``L``."""
        return itemset in self.frequent

    def tracked(self) -> dict[Itemset, int]:
        """All tracked itemsets (``L ∪ NB⁻``) with their counts."""
        combined = dict(self.frequent)
        combined.update(self.border)
        return combined

    def frequent_of_size(self, size: int) -> dict[Itemset, int]:
        """The frequent itemsets with exactly ``size`` items."""
        return {x: c for x, c in self.frequent.items() if len(x) == size}

    def copy(self) -> "FrequentItemsetModel":
        """An independent deep copy (dict/set contents are immutable)."""
        return FrequentItemsetModel(
            minsup=self.minsup,
            n_transactions=self.n_transactions,
            frequent=dict(self.frequent),
            border=dict(self.border),
            items=set(self.items),
            selected_block_ids=list(self.selected_block_ids),
        )

    def raise_threshold(self, new_minsup: float) -> "FrequentItemsetModel":
        """Re-derive the model at a *higher* threshold ``κ' > κ``.

        Trivial per §3.1.1: ``L(D, κ') ⊆ L(D, κ)``, so it is a filter
        plus border recomputation from the already-known counts.  Newly
        demoted itemsets become border members when all their subsets
        stay frequent; old border members whose subsets got demoted are
        dropped (their counts are still known but they no longer satisfy
        the border condition).
        """
        if new_minsup < self.minsup:
            raise ValueError(
                "raise_threshold only supports increasing the threshold; "
                "use BordersMaintainer.lower_threshold for decreases"
            )
        new_model = FrequentItemsetModel(
            minsup=new_minsup,
            n_transactions=self.n_transactions,
            items=set(self.items),
            selected_block_ids=list(self.selected_block_ids),
        )
        threshold = minimum_count(new_minsup, self.n_transactions) if self.n_transactions else 1
        for itemset, count in self.frequent.items():
            if count >= threshold:
                new_model.frequent[itemset] = count
        from repro.itemsets.border import is_on_border

        frequent_set = set(new_model.frequent)
        for itemset, count in {**self.frequent, **self.border}.items():
            if itemset not in frequent_set and is_on_border(itemset, frequent_set):
                new_model.border[itemset] = count
        return new_model
