"""Itemset and transaction primitives.

An *item* is a small non-negative integer identifier; a *transaction*
and an *itemset* are sets of items (paper §3).  Throughout the package
an itemset is canonically represented as a sorted tuple of item ids —
hashable, ordered (which makes the Apriori prefix join trivial), and
cheap to subset.
"""

from __future__ import annotations

import math
from collections.abc import Collection, Iterable, Iterator, Sequence
from itertools import combinations

#: Canonical itemset type: strictly increasing tuple of item ids.
Itemset = tuple[int, ...]

#: Canonical transaction type: strictly increasing tuple of item ids.
Transaction = tuple[int, ...]


def make_itemset(items: Iterable[int]) -> Itemset:
    """Canonicalize ``items`` into a sorted duplicate-free tuple."""
    return tuple(sorted(set(items)))


def normalize_transaction(items: Iterable[int]) -> Transaction:
    """Canonicalize a transaction: sorted, duplicate-free item ids."""
    return tuple(sorted(set(items)))


def is_canonical(itemset: Sequence[int]) -> bool:
    """Whether ``itemset`` is already sorted and duplicate-free."""
    return all(itemset[i] < itemset[i + 1] for i in range(len(itemset) - 1))


def contains(transaction: Transaction, itemset: Itemset) -> bool:
    """Whether the transaction contains the itemset (``X ⊆ T``).

    Both arguments must be canonical (sorted); the check is a linear
    merge rather than building sets.
    """
    ti = 0
    n = len(transaction)
    for item in itemset:
        while ti < n and transaction[ti] < item:
            ti += 1
        if ti >= n or transaction[ti] != item:
            return False
        ti += 1
    return True


def proper_subsets(itemset: Itemset) -> Iterator[Itemset]:
    """All proper subsets of size ``len(itemset) - 1``.

    These are the subsets Apriori's prune step and the negative-border
    definition quantify over.
    """
    for i in range(len(itemset)):
        yield itemset[:i] + itemset[i + 1 :]


def all_subsets(itemset: Itemset) -> Iterator[Itemset]:
    """Every non-empty proper subset of the itemset, smallest first."""
    for size in range(1, len(itemset)):
        yield from combinations(itemset, size)


def prefix_join(a: Itemset, b: Itemset) -> Itemset | None:
    """Join two k-itemsets sharing their first ``k-1`` items (AMS+96).

    Returns the (k+1)-itemset, or ``None`` when the join is undefined.
    The caller is expected to present ``a < b`` lexicographically; the
    function returns ``None`` otherwise so callers can iterate ordered
    pairs without pre-filtering.
    """
    if len(a) != len(b) or not a:
        return None
    if a[:-1] != b[:-1] or a[-1] >= b[-1]:
        return None
    return a + (b[-1],)


def generate_candidates(frequent: Collection[Itemset]) -> set[Itemset]:
    """Apriori candidate generation: prefix join + subset prune.

    Given the frequent k-itemsets, produce the (k+1)-candidates whose
    every k-subset is frequent.
    """
    frequent_set = set(frequent)
    ordered = sorted(frequent_set)
    candidates: set[Itemset] = set()
    # Group by shared (k-1)-prefix so the join is near-linear.
    by_prefix: dict[Itemset, list[Itemset]] = {}
    for itemset in ordered:
        by_prefix.setdefault(itemset[:-1], []).append(itemset)
    for group in by_prefix.values():
        for i, a in enumerate(group):
            for b in group[i + 1 :]:
                joined = prefix_join(a, b)
                if joined is None:
                    continue
                if all(s in frequent_set for s in proper_subsets(joined)):
                    candidates.add(joined)
    return candidates


def support_fraction(count: int, total: int) -> float:
    """Support ``σ_D(X)`` as a fraction; 0.0 over an empty dataset."""
    if total <= 0:
        return 0.0
    return count / total


def minimum_count(minsup: float, total: int) -> int:
    """The smallest absolute count that meets ``σ >= minsup``.

    Uses a half-ulp tolerance so that e.g. ``minsup=0.01, total=300``
    yields 3 rather than 4 when ``0.01 * 300`` lands on 3.0 minus one
    floating-point ulp.
    """
    if not 0 < minsup < 1:
        raise ValueError(f"minimum support must be in (0, 1), got {minsup}")
    exact = minsup * total
    threshold = math.ceil(exact - 1e-9)
    return max(threshold, 1)
