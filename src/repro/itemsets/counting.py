"""Support counters for BORDERS' update phase: PT-Scan, ECUT, ECUT+.

The update phase of BORDERS must count a (typically small) set ``S`` of
new candidate itemsets over the selected blocks of the whole history.
The paper compares three ways to do it:

* **PT-Scan** — organize ``S`` in a prefix tree and scan every selected
  block in full.  Cost is proportional to the dataset size and nearly
  independent of ``|S|``'s composition, so it wins only when ``|S|`` is
  large.
* **ECUT** — intersect the per-block TID-lists of each itemset's items.
  Cost is proportional to the summed supports of the items involved —
  typically one to two orders of magnitude less data than a full scan.
* **ECUT+** — like ECUT but prefer materialized 2-itemset TID-lists
  when a block has them, fetching fewer and shorter lists.

All three implement :class:`SupportCounter` so BORDERS treats them
interchangeably.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Collection, Sequence

import numpy as np

from repro.itemsets.itemset import Itemset, Transaction
from repro.itemsets.materialize import PairTidListStore, plan_cover
from repro.itemsets.prefix_tree import PrefixTree
from repro.itemsets.tidlist import TidListStore, intersect_sorted
from repro.storage.blockstore import BlockStore


class SupportCounter(ABC):
    """Counts the supports of a set of itemsets over selected blocks."""

    #: Short name used in benchmark output ("PT-Scan", "ECUT", "ECUT+").
    name: str = "abstract"

    @abstractmethod
    def count(
        self, itemsets: Collection[Itemset], block_ids: Sequence[int]
    ) -> dict[Itemset, int]:
        """Absolute support counts of ``itemsets`` over ``block_ids``."""


class PTScanCounter(SupportCounter):
    """Full-scan counting through a prefix tree (the BORDERS baseline).

    Args:
        store: Block store holding the transactional data; every
            selected block is scanned in full (and charged).
    """

    name = "PT-Scan"

    def __init__(self, store: BlockStore[Transaction]):
        self._store = store

    def count(
        self, itemsets: Collection[Itemset], block_ids: Sequence[int]
    ) -> dict[Itemset, int]:
        if not itemsets:
            return {}
        tree = PrefixTree(itemsets)
        tree.count_dataset(self._store.scan_many(block_ids))
        return tree.counts()


class ECUTCounter(SupportCounter):
    """TID-list intersection counting (Efficient Counting Using TID-lists).

    Args:
        tidlists: Per-block single-item TID-list store.
    """

    name = "ECUT"

    def __init__(self, tidlists: TidListStore):
        self._tidlists = tidlists

    def count(
        self, itemsets: Collection[Itemset], block_ids: Sequence[int]
    ) -> dict[Itemset, int]:
        return {
            itemset: self._tidlists.count_itemset(block_ids, itemset)
            for itemset in itemsets
        }


class ECUTPlusCounter(SupportCounter):
    """ECUT with materialized 2-itemset TID-lists (§3.1.1, ECUT+).

    For each block, the counter plans a cover of the target itemset out
    of the pairs materialized *for that block* plus leftover single
    items, then intersects the fetched lists.  Blocks without
    materialized pairs degrade gracefully to plain ECUT.

    Args:
        tidlists: Per-block single-item TID-list store.
        pairs: Per-block materialized 2-itemset store.
    """

    name = "ECUT+"

    def __init__(self, tidlists: TidListStore, pairs: PairTidListStore):
        self._tidlists = tidlists
        self._pairs = pairs

    def count(
        self, itemsets: Collection[Itemset], block_ids: Sequence[int]
    ) -> dict[Itemset, int]:
        return {
            itemset: sum(
                self._count_in_block(itemset, block_id) for block_id in block_ids
            )
            for itemset in itemsets
        }

    def _count_in_block(self, itemset: Itemset, block_id: int) -> int:
        if not itemset:
            return self._tidlists.block_size(block_id)
        if len(itemset) == 1:
            return int(len(self._tidlists.fetch(block_id, itemset[0])))
        available = (
            self._pairs.available(block_id) if self._pairs.has_block(block_id) else set()
        )
        pair_cover, single_cover = plan_cover(itemset, available)
        lists: list[np.ndarray] = []
        for pair in pair_cover:
            lists.append(self._pairs.fetch(block_id, pair))
        for item in single_cover:
            lists.append(self._tidlists.fetch(block_id, item))
        return int(len(intersect_sorted(lists)))
