"""Support counters for BORDERS' update phase: PT-Scan, ECUT, ECUT+.

The update phase of BORDERS must count a (typically small) set ``S`` of
new candidate itemsets over the selected blocks of the whole history.
The paper compares three ways to do it:

* **PT-Scan** — organize ``S`` in a prefix tree and scan every selected
  block in full.  Cost is proportional to the dataset size and nearly
  independent of ``|S|``'s composition, so it wins only when ``|S|`` is
  large.
* **ECUT** — intersect the per-block TID-lists of each itemset's items.
  Cost is proportional to the summed supports of the items involved —
  typically one to two orders of magnitude less data than a full scan.
* **ECUT+** — like ECUT but prefer materialized 2-itemset TID-lists
  when a block has them, fetching fewer and shorter lists.

All three implement :class:`SupportCounter` so BORDERS treats them
interchangeably.

Each counter additionally exposes :meth:`SupportCounter.count_batch`,
the batched engine BORDERS actually calls: per block, the candidate set
is organized in a prefix trie over rarest-first fetch-key sequences, so
candidates sharing a prefix share the partial intersection computed at
the common trie node, and a per-batch fetch cache reads each distinct
physical list exactly once per block (repeat uses are recorded as cache
hits, not re-charged — the byte meter sees what a buffer pool would
serve from disk).  PT-Scan's plain :meth:`~PTScanCounter.count` is
already batched — one prefix tree, one scan — so its batch path is the
same code.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Collection, Iterable, Sequence
from typing import Any, Union

import numpy as np

from repro.itemsets.itemset import Itemset, Transaction
from repro.itemsets.kernels import (
    TID_BYTES,
    BitmapTidList,
    ChunkedTidList,
    DeltaVarintTidList,
    TidList,
    as_array,
    count_pair,
    count_segments,
    intersect_many,
    intersect_pair,
    list_nbytes,
)
from repro.itemsets.materialize import Pair, PairTidListStore, plan_cover
from repro.itemsets.prefix_tree import PrefixTree
from repro.itemsets.tidlist import TidListStore
from repro.storage.blockstore import BlockStore
from repro.storage.iostats import IOStats


class SupportCounter(ABC):
    """Counts the supports of a set of itemsets over selected blocks."""

    #: Short name used in benchmark output ("PT-Scan", "ECUT", "ECUT+").
    name: str = "abstract"

    @abstractmethod
    def count(
        self, itemsets: Collection[Itemset], block_ids: Sequence[int]
    ) -> dict[Itemset, int]:
        """Absolute support counts of ``itemsets`` over ``block_ids``."""

    def count_batch(
        self, itemsets: Collection[Itemset], block_ids: Sequence[int]
    ) -> dict[Itemset, int]:
        """Batched support counting; equals :meth:`count` exactly.

        The default falls back to the per-itemset path; TID-list
        counters override it with the shared-prefix trie engine.
        """
        return self.count(itemsets, block_ids)


class PTScanCounter(SupportCounter):
    """Full-scan counting through a prefix tree (the BORDERS baseline).

    The scan path is inherently batched (one prefix tree over all of
    ``S``, one pass over the data), so :meth:`count_batch` is the same
    code.

    Args:
        store: Block store holding the transactional data; every
            selected block is scanned in full (and charged).
    """

    name = "PT-Scan"

    def __init__(self, store: BlockStore[Transaction]):
        self._store = store

    def count(
        self, itemsets: Collection[Itemset], block_ids: Sequence[int]
    ) -> dict[Itemset, int]:
        if not itemsets:
            return {}
        tree = PrefixTree(itemsets)
        tree.count_dataset(self._store.scan_many(block_ids))
        return tree.counts()


# ----------------------------------------------------------------------
# The batched TID-list engine: fetch cache + shared-prefix trie
# ----------------------------------------------------------------------

#: A fetch key names one physical list: a bare ``int`` is a single-item
#: list, an ``(a, b)`` tuple a materialized 2-itemset list.  The two
#: never collide as dict keys, and plain ints keep the hot ECUT trie
#: free of per-edge tuple allocation.
_FetchKey = Union[int, Pair]

#: Compressed lists up to this many tids are decoded once per
#: (batch, block) pass when first fetched: a trie walk touches each
#: hot list many times, and re-decoding per intersection costs more
#: than the one bounded array (at most 512 KB) the decode produces.
#: Longer lists stay compressed and intersect through the
#: segment-skipping kernels, which only decode what a probe overlaps.
#: The threshold depends only on list length, so counting stays
#: deterministic across backends, workers, and restarts.
DECODE_AT_FETCH_MAX = 1 << 16


class _BlockFetchCache:
    """Per-(batch, block) read-through cache over the TID-list stores.

    The first use of a list fetches (and charges) it through the store;
    every further use within the batch is served from the cache and
    recorded as a cache hit on the same I/O counter — each distinct
    physical list is charged exactly once per block, exactly what a
    buffer pool large enough for one block's working set would do.
    Short compressed lists are decoded on that first fetch (see
    :data:`DECODE_AT_FETCH_MAX`); hits keep charging the *fetched*
    (compressed) bytes, because that is what was read from the store.
    """

    __slots__ = ("cached", "_tidlists", "_pairs", "_block_id", "_fetched_nbytes")

    def __init__(
        self,
        tidlists: TidListStore,
        block_id: int,
        pairs: PairTidListStore | None = None,
    ):
        self._tidlists = tidlists
        self._pairs = pairs
        self._block_id = block_id
        self._fetched_nbytes: dict[_FetchKey, int] = {}
        #: Key → list map; the engines probe this dict directly on their
        #: hot path and only call :meth:`fetch_new` / :meth:`record_hit`
        #: on a miss / hit.
        self.cached: dict[_FetchKey, TidList] = {}

    def fetch_new(self, key: _FetchKey) -> TidList:
        """Fetch (and charge) a list not yet in the cache."""
        if type(key) is tuple:
            assert self._pairs is not None
            tids = self._pairs.fetch(self._block_id, key)
        else:
            tids = self._tidlists.fetch_list(self._block_id, key)
        self._fetched_nbytes[key] = list_nbytes(tids)
        if (
            isinstance(tids, (ChunkedTidList, DeltaVarintTidList))
            and len(tids) <= DECODE_AT_FETCH_MAX
        ):
            tids = as_array(tids)
        self.cached[key] = tids
        return tids

    def record_hit(self, key: _FetchKey, tids: TidList) -> None:
        """Account one re-use of an already-fetched list."""
        store = self._pairs if type(key) is tuple else self._tidlists
        assert store is not None
        store.stats.record_cached_read(self._fetched_nbytes[key])

    def get(self, key: _FetchKey) -> TidList:
        tids = self.cached.get(key)
        if tids is not None:
            self.record_hit(key, tids)
            return tids
        return self.fetch_new(key)


class _TrieNode:
    """One node of the per-block fetch-key trie."""

    __slots__ = ("children", "terminals")

    def __init__(self) -> None:
        self.children: dict[_FetchKey, _TrieNode] = {}
        self.terminals: list[Itemset] = []


def _build_trie(
    sequences: Iterable[tuple[Itemset, Sequence[_FetchKey]]],
) -> _TrieNode:
    root = _TrieNode()
    for itemset, keys in sequences:
        node = root
        for key in keys:
            child = node.children.get(key)
            if child is None:
                child = _TrieNode()
                node.children[key] = child
            node = child
        node.terminals.append(itemset)
    return root


def _zero_descendants(node: _TrieNode, counts: dict[Itemset, int]) -> None:
    stack = list(node.children.values())
    while stack:
        child = stack.pop()
        for itemset in child.terminals:
            counts[itemset] = 0
        stack.extend(child.children.values())


def _count_trie(
    root: _TrieNode, cache: _BlockFetchCache, block_size: int
) -> dict[Itemset, int]:
    """One DFS over the trie: every node's partial intersection is
    computed once and shared by all of its descendants.

    Two terminal-edge optimizations keep the per-candidate constant
    below the per-itemset path's: a child with no grandchildren only
    needs a *count*, never the intersection array, and all such sibling
    leaves are counted in a single segmented kernel call
    (:func:`~repro.itemsets.kernels.count_segments`) when the running
    intersection and the leaf lists are plain arrays.
    """
    counts: dict[Itemset, int] = {}
    stack: list[tuple[_TrieNode, TidList | None]] = [(root, None)]
    while stack:
        node, running = stack.pop()
        if node.terminals:
            support = block_size if running is None else len(running)
            for itemset in node.terminals:
                counts[itemset] = support
        if not node.children:
            continue
        if running is not None and len(running) == 0:
            # Subtrees below an empty intersection are all zero; skip
            # their fetches entirely (the per-itemset path would have
            # stopped fetching at this point too).
            _zero_descendants(node, counts)
            continue
        # The segmented sibling-leaf kernel needs plain ndarrays on
        # both sides; bitmap and compressed lists go through the
        # representation-aware pair kernels instead.
        running_is_array = isinstance(running, np.ndarray)
        leaves: list[tuple[list[Itemset], TidList]] | None = None
        for key, child in node.children.items():
            tids = cache.get(key)
            if child.children:
                stack.append(
                    (child, tids if running is None else intersect_pair(running, tids))
                )
            elif running is None:
                # Depth-1 leaf: the candidate is a single list, its
                # support is the list's catalog length.
                support = len(tids)
                for itemset in child.terminals:
                    counts[itemset] = support
            elif running_is_array and isinstance(tids, np.ndarray):
                if leaves is None:
                    leaves = []
                leaves.append((child.terminals, tids))
            else:
                support = count_pair(running, tids)
                for itemset in child.terminals:
                    counts[itemset] = support
        if leaves is not None:
            if len(leaves) == 1:
                terminals, tids = leaves[0]
                supports = [count_pair(running, tids)]
            else:
                supports = count_segments(running, [tids for _, tids in leaves])
            for (terminals, _), support in zip(leaves, supports):
                for itemset in terminals:
                    counts[itemset] = support
    return counts


#: Cap on the dense engine's scratch matrices, in cells ((distinct
#: lists + candidates) × block transactions; one byte per cell).  64M
#: cells = 64 MB; blocks whose matrices would be larger fall back to
#: the per-node trie DFS.
DENSE_MAX_CELLS = 1 << 26

_PAD = np.iinfo(np.int64).max


class _SingleKeyAccountant:
    """Meters the dense engine's reads against the single-item store.

    Fetch charges and cache-hit audits are recorded in aggregate
    (one call per block per depth), with totals identical to per-list
    accounting.
    """

    __slots__ = ("_stats",)

    def __init__(self, stats: IOStats):
        self._stats = stats

    def record_fetches(self, key_indices: np.ndarray, nbytes: np.ndarray) -> None:
        self._stats.record_reads(len(key_indices), int(nbytes.sum()))

    def record_hits(
        self, uniq: np.ndarray, hit_uses: np.ndarray, nbytes: np.ndarray
    ) -> None:
        hits = int(hit_uses.sum())
        if hits:
            self._stats.record_cached_reads(
                hits, int((nbytes[uniq] * hit_uses).sum())
            )


class _CoverKeyAccountant:
    """Like :class:`_SingleKeyAccountant` but over ECUT+ cover keys.

    A key is a single item (``int``) or a materialized 2-itemset
    (``tuple``); fetches and hits are charged to the matching store.
    """

    __slots__ = ("_sstats", "_pstats", "_is_pair")

    def __init__(
        self,
        tidlists: TidListStore,
        pairs: PairTidListStore,
        keys: list[_FetchKey],
    ):
        self._sstats = tidlists.stats
        self._pstats = pairs.stats
        self._is_pair = np.fromiter(
            (type(k) is tuple for k in keys), dtype=bool, count=len(keys)
        )

    def record_fetches(self, key_indices: np.ndarray, nbytes: np.ndarray) -> None:
        pair_mask = self._is_pair[key_indices]
        pairs = int(pair_mask.sum())
        if pairs:
            self._pstats.record_reads(pairs, int(nbytes[pair_mask].sum()))
        if pairs < len(key_indices):
            self._sstats.record_reads(
                len(key_indices) - pairs, int(nbytes[~pair_mask].sum())
            )

    def record_hits(
        self, uniq: np.ndarray, hit_uses: np.ndarray, nbytes: np.ndarray
    ) -> None:
        pair_mask = self._is_pair[uniq]
        for stats, mask in ((self._sstats, ~pair_mask), (self._pstats, pair_mask)):
            hits = int(hit_uses[mask].sum())
            if hits:
                stats.record_cached_reads(
                    hits, int((nbytes[uniq[mask]] * hit_uses[mask]).sum())
                )


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def _row_popcounts(rows: np.ndarray) -> np.ndarray:
        """Per-row set-bit counts of a packed uint8 matrix."""
        return np.bitwise_count(rows).sum(axis=1, dtype=np.int64)

else:  # pragma: no cover - exercised only on numpy < 2.0
    _POP8 = np.array([bin(v).count("1") for v in range(256)], dtype=np.uint8)

    def _row_popcounts(rows: np.ndarray) -> np.ndarray:
        """Per-row set-bit counts of a packed uint8 matrix."""
        return _POP8[rows].sum(axis=1, dtype=np.int64)


def _dense_count_block(
    S: np.ndarray,
    last_col: np.ndarray,
    accountant: _SingleKeyAccountant | _CoverKeyAccountant,
    keys_matrix: np.ndarray,
    key_lens: np.ndarray,
    key_nbytes: np.ndarray,
    block_size: int,
    supports: np.ndarray,
) -> None:
    """Level-synchronous dense evaluation of one block's batch.

    ``S`` holds each candidate's fetch-key indices in per-block
    rarest-first order (``-1``-padded); ``last_col[r]`` is the index of
    candidate ``r``'s final key (``-1`` for the empty itemset).
    ``keys_matrix[k]`` is key ``k``'s list as a packed bitset row (bit
    ``t`` = "transaction ``t`` of the block contains this list",
    gathered from the stores' packed-row caches), ``key_lens[k]`` its
    catalog length, ``key_nbytes[k]`` its physical fetch size.  The
    candidates' running intersections are rows of a second bitset
    matrix, advanced one trie level at a time: all partial
    intersections of a depth are one fancy-indexed ``&``, all supports
    of a depth one row-popcount.  Python-level work per depth is a
    handful of numpy calls, and the per-depth data volume is one bit
    per (row, transaction).

    Pruning matches the per-itemset path exactly: a candidate's key at
    depth ``d`` is only charged while its depth ``d-1`` intersection
    is non-empty, so each key use either re-uses an already-charged
    fetch (a recorded cache hit) or charges the store — and the block's
    ``bytes_read + bytes_cached`` equals what the per-itemset path
    charges, with ``bytes_read`` a deduplicated (≤) share of it.
    """
    n_keys = len(key_lens)
    built = np.zeros(n_keys, dtype=bool)
    running = np.empty((len(S), keys_matrix.shape[1]), dtype=np.uint8)
    alive = last_col >= 0
    supports[~alive] += block_size
    for depth in range(S.shape[1]):
        col = S[:, depth]
        idx = np.flatnonzero(alive & (col >= 0))
        if idx.size == 0:
            break
        ks = col[idx]
        # bincount-based distinct/use counts: ks indexes a small dense
        # key space, so this beats a sort-based np.unique.
        all_uses = np.bincount(ks, minlength=n_keys)
        uniq = np.flatnonzero(all_uses)
        uses = all_uses[uniq]
        new_mask = ~built[uniq]
        new = uniq[new_mask]
        if new.size:
            built[new] = True
            accountant.record_fetches(new, key_nbytes[new])
        # Each use beyond the first fetch of a key is a cache hit.
        accountant.record_hits(uniq, uses - new_mask, key_nbytes)
        if depth == 0:
            running[idx] = keys_matrix[ks]
            counts = key_lens[ks]
        else:
            advanced = running[idx] & keys_matrix[ks]
            running[idx] = advanced
            counts = _row_popcounts(advanced)
        done = last_col[idx] == depth
        if done.any():
            supports[idx[done]] += counts[done]
        dead = counts == 0
        if dead.any():
            # An empty intersection zeroes the whole subtree: deeper
            # keys of these candidates are never charged (the
            # per-itemset path would have stopped fetching here too).
            alive[idx[dead]] = False


def _contiguous_shards(
    values: list[Any], weights: list[int], parts: int
) -> list[list[Any]]:
    """Split ``values`` into <= ``parts`` contiguous, weight-balanced runs.

    Contiguity keeps each shard's blocks in arrival order (workers
    then touch a dense range of any path-local cache) and makes the
    partition a pure function of the block set, independent of worker
    scheduling.
    """
    count = min(parts, len(values))
    total = sum(weights) or len(values)
    shards: list[list[Any]] = []
    current: list[Any] = []
    accumulated = 0.0
    for value, weight in zip(values, weights):
        current.append(value)
        accumulated += weight if weight > 0 else 1
        if len(shards) < count - 1 and accumulated >= total * (len(shards) + 1) / count:
            shards.append(current)
            current = []
    if current:
        shards.append(current)
    return shards


class ECUTCounter(SupportCounter):
    """TID-list intersection counting (Efficient Counting Using TID-lists).

    Args:
        tidlists: Per-block single-item TID-list store.
    """

    name = "ECUT"

    def __init__(self, tidlists: TidListStore, pool: Any = None):
        self._tidlists = tidlists
        self._pool = pool

    def bind_pool(self, pool: Any) -> None:
        """Attach a :class:`~repro.parallel.pool.WorkerPool`.

        With a pool of more than one worker, :meth:`count_batch` shards
        by block and merges the per-shard count vectors by TID-list
        additivity (§2.2) — the merged supports are exactly the serial
        ones.  ``None`` detaches.
        """
        self._pool = pool

    def __getstate__(self) -> dict[str, Any]:
        # The pool is execution wiring, not model state: a counter
        # pickled into a checkpoint (or shipped to a worker) must not
        # drag the parent's dispatch config along, and checkpoint bytes
        # must not depend on the worker count.
        state = dict(self.__dict__)
        state["_pool"] = None
        return state

    def count(
        self, itemsets: Collection[Itemset], block_ids: Sequence[int]
    ) -> dict[Itemset, int]:
        return {
            itemset: self._tidlists.count_itemset(block_ids, itemset)
            for itemset in itemsets
        }

    def count_batch(
        self, itemsets: Collection[Itemset], block_ids: Sequence[int]
    ) -> dict[Itemset, int]:
        """Batched ECUT: per block, a rarest-first shared-prefix trie.

        Orders every itemset's items rarest-first (the same order the
        per-itemset path fetches in), so itemsets sharing rare items
        share both the fetches and the partial intersections.
        """
        counts = {itemset: 0 for itemset in itemsets}
        if not counts:
            return {}
        targets = list(counts)
        items = sorted({item for itemset in targets for item in itemset})
        if not items:
            # Only empty itemsets: each counts every block in full.
            total = sum(self._tidlists.block_size(b) for b in block_ids)
            return {itemset: total for itemset in counts}
        pool = self._pool
        if pool is not None and pool.workers > 1 and len(block_ids) > 1:
            sharded = self._count_batch_sharded(targets, list(block_ids), pool)
            if sharded is not None:
                for r, itemset in enumerate(targets):
                    counts[itemset] = sharded[r]
                return counts
        item_index = {item: k for k, item in enumerate(items)}
        n = len(targets)
        width = max(1, max(len(itemset) for itemset in targets))
        T = np.full((n, width), -1, dtype=np.int64)
        for r, itemset in enumerate(targets):
            for c, item in enumerate(itemset):
                T[r, c] = item_index[item]
        last_col = np.fromiter(
            (len(itemset) - 1 for itemset in targets), dtype=np.int64, count=n
        )
        supports = np.zeros(n, dtype=np.int64)
        item_arange = np.arange(len(items), dtype=np.int64)
        items_array = np.asarray(items, dtype=np.int64)
        for block_id in block_ids:
            block_size = self._tidlists.block_size(block_id)
            if (len(items) + n) * block_size > DENSE_MAX_CELLS:
                # Oversized blocks fall back to the per-node trie DFS
                # for scratch-size reasons.  Compressed (cold) blocks
                # take the dense path like hot ones: the packed catalog
                # decodes each list at most once per block while the
                # accountant keeps charging the compressed physical
                # sizes, so byte accounting stays placement-independent.
                self._count_block_trie(targets, block_id, supports)
                continue
            # Rank items by (per-block count, item): `items` is sorted,
            # so the index is the tie-break — exactly the stable
            # count-sort the per-itemset path applies, which keeps the
            # engine's fetch set a subset of the per-itemset path's.
            keys_matrix, block_counts, key_nbytes = self._tidlists.packed_rows(
                block_id, items_array
            )
            rank = block_counts * len(items) + item_arange
            keyed = np.where(T >= 0, rank[T], _PAD)
            order = np.argsort(keyed, axis=1, kind="stable")
            S = np.take_along_axis(T, order, axis=1)
            _dense_count_block(
                S,
                last_col,
                _SingleKeyAccountant(self._tidlists.stats),
                keys_matrix,
                block_counts,
                key_nbytes,
                block_size,
                supports,
            )
        for r, itemset in enumerate(targets):
            counts[itemset] = int(supports[r])
        return counts

    def _count_batch_sharded(
        self, targets: list[Itemset], block_ids: list[int], pool: Any
    ) -> list[int] | None:
        """Fan per-block counting out to workers; sum the vectors.

        Each shard is a contiguous run of blocks (weight-balanced by
        transaction count) whose refs workers resolve zero-copy for
        mmap-backed blocks.  Additivity makes the merge a plain integer
        sum, so the result is byte-for-byte the serial one.  Returns
        ``None`` — caller counts serially — when any block has no
        source handle (e.g. right after a checkpoint restore: TID-lists
        survive, block handles do not).
        """
        from repro.parallel.shards import block_ref, count_shard

        refs = []
        for block_id in block_ids:
            block = self._tidlists.source_block(block_id)
            if block is None:
                return None
            refs.append(block_ref(block))
        weights = [self._tidlists.block_size(b) for b in block_ids]
        shards = _contiguous_shards(refs, weights, pool.workers)
        frozen = tuple(targets)
        results = pool.run(
            count_shard, [(frozen, tuple(shard)) for shard in shards]
        )
        totals = [0] * len(targets)
        for vector in results:
            for index, value in enumerate(vector):
                totals[index] += value
        return totals

    def _count_block_trie(
        self, targets: list[Itemset], block_id: int, supports: np.ndarray
    ) -> None:
        """Per-node trie DFS fallback for blocks too large to densify."""
        rarity = self._tidlists.item_counts(
            block_id, {item for itemset in targets for item in itemset}
        )
        sequences = [
            (itemset, sorted(itemset, key=rarity.__getitem__))
            for itemset in targets
        ]
        cache = _BlockFetchCache(self._tidlists, block_id)
        block_counts = _count_trie(
            _build_trie(sequences), cache, self._tidlists.block_size(block_id)
        )
        for r, itemset in enumerate(targets):
            supports[r] += block_counts[itemset]


class ECUTPlusCounter(SupportCounter):
    """ECUT with materialized 2-itemset TID-lists (§3.1.1, ECUT+).

    For each block, the counter plans a cover of the target itemset out
    of the pairs materialized *for that block* plus leftover single
    items, then intersects the fetched lists.  Blocks without
    materialized pairs degrade gracefully to plain ECUT.

    Args:
        tidlists: Per-block single-item TID-list store.
        pairs: Per-block materialized 2-itemset store.
    """

    name = "ECUT+"

    def __init__(self, tidlists: TidListStore, pairs: PairTidListStore):
        self._tidlists = tidlists
        self._pairs = pairs
        # Cover plans are deterministic in (block, itemset) once the
        # block's pair lists exist — pair materialization is one-shot —
        # so the batch path memoizes them across maintenance cycles.
        self._plan_cache: dict[tuple[int, Itemset], list[_FetchKey]] = {}

    def __getstate__(self) -> dict[str, Any]:
        # The plan memo is a derived cache, rebuilt on demand from the
        # stores; persisting it would make checkpoint bytes depend on
        # which process happened to count which block (the sharded
        # counting path plans covers worker-side).
        state = dict(self.__dict__)
        state["_plan_cache"] = {}
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        state.setdefault("_plan_cache", {})
        self.__dict__.update(state)

    def count(
        self, itemsets: Collection[Itemset], block_ids: Sequence[int]
    ) -> dict[Itemset, int]:
        return {
            itemset: sum(
                self._count_in_block(itemset, block_id) for block_id in block_ids
            )
            for itemset in itemsets
        }

    def count_batch(
        self, itemsets: Collection[Itemset], block_ids: Sequence[int]
    ) -> dict[Itemset, int]:
        """Batched ECUT+: per block, covers feed the shared-prefix trie.

        Every itemset's :func:`plan_cover` result (against the block's
        materialized pairs) becomes a sequence of fetch keys, ordered
        shortest-list-first; itemsets whose covers share pairs or rare
        singles share fetches and partial intersections.
        """
        counts = {itemset: 0 for itemset in itemsets}
        if not counts:
            return {}
        targets = list(counts)
        n = len(targets)
        supports = np.zeros(n, dtype=np.int64)
        for block_id in block_ids:
            available = (
                self._pairs.available(block_id)
                if self._pairs.has_block(block_id)
                else set()
            )
            # Covers are per block (they depend on the block's
            # materialized pairs), so the key catalog is too.
            sequences = [
                self._cover_keys(itemset, block_id, available)
                for itemset in targets
            ]
            block_size = self._tidlists.block_size(block_id)
            key_index: dict[_FetchKey, int] = {}
            width = max(1, max(len(keys) for keys in sequences))
            S = np.full((n, width), -1, dtype=np.int64)
            for r, keys in enumerate(sequences):
                for c, key in enumerate(keys):
                    ki = key_index.get(key)
                    if ki is None:
                        ki = len(key_index)
                        key_index[key] = ki
                    S[r, c] = ki
            if (len(key_index) + n) * block_size > DENSE_MAX_CELLS:
                cache = _BlockFetchCache(self._tidlists, block_id, self._pairs)
                block_counts = _count_trie(
                    _build_trie(zip(targets, sequences)), cache, block_size
                )
                for r, itemset in enumerate(targets):
                    supports[r] += block_counts[itemset]
                continue
            last_col = np.fromiter(
                (len(keys) - 1 for keys in sequences), dtype=np.int64, count=n
            )
            keys = list(key_index)
            n_keys = len(keys)
            width = (block_size + 7) >> 3
            keys_matrix = np.zeros((n_keys, width), dtype=np.uint8)
            key_lens = np.zeros(n_keys, dtype=np.int64)
            key_nbytes = np.zeros(n_keys, dtype=np.int64)
            single_pos = [k for k, key in enumerate(keys) if type(key) is not tuple]
            pair_pos = [k for k, key in enumerate(keys) if type(key) is tuple]
            if single_pos:
                items_array = np.fromiter(
                    (keys[k] for k in single_pos),
                    dtype=np.int64,
                    count=len(single_pos),
                )
                rows, lens, nbytes = self._tidlists.packed_rows(
                    block_id, items_array
                )
                sp = np.asarray(single_pos, dtype=np.int64)
                keys_matrix[sp] = rows
                key_lens[sp] = lens
                key_nbytes[sp] = nbytes
            if pair_pos:
                pair_rows, pair_matrix, pair_lens = self._pairs.packed_rows(
                    block_id, block_size
                )
                rows = np.fromiter(
                    (pair_rows[keys[k]] for k in pair_pos),
                    dtype=np.int64,
                    count=len(pair_pos),
                )
                pp = np.asarray(pair_pos, dtype=np.int64)
                keys_matrix[pp] = pair_matrix[rows]
                key_lens[pp] = pair_lens[rows]
                key_nbytes[pp] = pair_lens[rows] * TID_BYTES
            _dense_count_block(
                S,
                last_col,
                _CoverKeyAccountant(self._tidlists, self._pairs, keys),
                keys_matrix,
                key_lens,
                key_nbytes,
                block_size,
                supports,
            )
        for r, itemset in enumerate(targets):
            counts[itemset] = int(supports[r])
        return counts

    def _cover_keys(
        self, itemset: Itemset, block_id: int, available: set[Pair]
    ) -> list[_FetchKey]:
        """Fetch-key sequence for one itemset in one block, rarest first.

        Memoized per (block, itemset) once the block's pairs exist —
        the plan and the ordering depend only on immutable per-block
        catalog state, and BORDERS re-counts overlapping candidate sets
        across maintenance cycles.
        """
        if len(itemset) < 2:
            return list(itemset)
        cache_key = (block_id, itemset)
        keys = self._plan_cache.get(cache_key)
        if keys is not None:
            return keys
        pair_cover, single_cover = plan_cover(itemset, available)
        # Sort entries (count, tag, key): the tag keeps int and tuple
        # keys from being compared with each other on count ties.
        keyed: list[tuple[int, int, _FetchKey]] = [
            (self._pairs.pair_count(block_id, pair), 0, pair) for pair in pair_cover
        ]
        keyed.extend(
            (self._tidlists.item_count(block_id, item), 1, item)
            for item in single_cover
        )
        keyed.sort()
        keys = [key for _, _, key in keyed]
        if self._pairs.has_block(block_id):
            # Before materialization the plan would be pairless and go
            # stale once pairs arrive; don't cache it.
            self._plan_cache[cache_key] = keys
        return keys

    def _count_in_block(self, itemset: Itemset, block_id: int) -> int:
        if not itemset:
            return self._tidlists.block_size(block_id)
        if len(itemset) == 1:
            return int(len(self._tidlists.fetch_list(block_id, itemset[0])))
        available = (
            self._pairs.available(block_id) if self._pairs.has_block(block_id) else set()
        )
        pair_cover, single_cover = plan_cover(itemset, available)
        lists: list[TidList] = []
        for pair in pair_cover:
            lists.append(self._pairs.fetch(block_id, pair))
        for item in single_cover:
            lists.append(self._tidlists.fetch_list(block_id, item))
        return int(len(intersect_many(lists)))
