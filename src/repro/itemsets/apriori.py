"""Apriori (Agrawal & Srikant 1994) with negative-border tracking.

This is the from-scratch miner that bootstraps the BORDERS maintainer:
one run over the initial data yields both the set of frequent itemsets
``L(D, κ)`` *and* the negative border ``NB⁻(D, κ)`` — the infrequent
itemsets all of whose proper subsets are frequent.  Apriori enumerates
the border for free: its level-``k`` candidates are exactly the
itemsets whose ``(k-1)``-subsets are all frequent, so the candidates
that fail the support test at each level are the border members.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.itemsets.itemset import (
    Itemset,
    Transaction,
    generate_candidates,
    minimum_count,
)
from repro.itemsets.prefix_tree import PrefixTree


@dataclass
class MiningResult:
    """Output of one Apriori run.

    Attributes:
        frequent: ``L(D, κ)`` with absolute support counts.
        border: ``NB⁻(D, κ)`` with absolute support counts.
        n_transactions: ``|D|``, the denominator for support fractions.
        minsup: The minimum support threshold ``κ`` used.
        passes: Number of dataset scans performed (one per level).
    """

    frequent: dict[Itemset, int] = field(default_factory=dict)
    border: dict[Itemset, int] = field(default_factory=dict)
    n_transactions: int = 0
    minsup: float = 0.0
    passes: int = 0

    def support(self, itemset: Itemset) -> float:
        """Support fraction of a tracked itemset (0.0 if untracked)."""
        count = self.frequent.get(itemset)
        if count is None:
            count = self.border.get(itemset, 0)
        if self.n_transactions == 0:
            return 0.0
        return count / self.n_transactions

    def frequent_of_size(self, size: int) -> dict[Itemset, int]:
        """The frequent itemsets with exactly ``size`` items."""
        return {x: c for x, c in self.frequent.items() if len(x) == size}


def _scan_items(transactions: Iterable[Transaction]) -> tuple[dict[int, int], int]:
    """One pass: per-item counts and the number of transactions."""
    counts: dict[int, int] = {}
    total = 0
    for transaction in transactions:
        total += 1
        for item in transaction:
            counts[item] = counts.get(item, 0) + 1
    return counts, total


def apriori(
    transactions_factory,
    minsup: float,
    max_size: int | None = None,
) -> MiningResult:
    """Mine frequent itemsets and the negative border.

    Args:
        transactions_factory: Zero-argument callable returning a fresh
            iterable of canonical transactions; it is invoked once per
            level (Apriori is a multi-pass algorithm, and the dataset
            may live in a metered :class:`~repro.storage.BlockStore`).
        minsup: Minimum support threshold ``κ`` in ``(0, 1)``.
        max_size: Optional cap on itemset size (mainly for tests).

    Returns:
        A :class:`MiningResult` with ``L``, ``NB⁻``, and scan counts.
    """
    item_counts, total = _scan_items(transactions_factory())
    result = MiningResult(n_transactions=total, minsup=minsup, passes=1)
    if total == 0:
        return result
    mincount = minimum_count(minsup, total)

    current_level: dict[Itemset, int] = {}
    for item, count in item_counts.items():
        itemset: Itemset = (item,)
        if count >= mincount:
            current_level[itemset] = count
            result.frequent[itemset] = count
        else:
            result.border[itemset] = count

    size = 1
    while current_level:
        if max_size is not None and size >= max_size:
            break
        candidates = generate_candidates(current_level.keys())
        if not candidates:
            break
        tree = PrefixTree(candidates)
        tree.count_dataset(transactions_factory())
        result.passes += 1
        counted = tree.counts()
        next_level: dict[Itemset, int] = {}
        for candidate, count in counted.items():
            if count >= mincount:
                next_level[candidate] = count
                result.frequent[candidate] = count
            else:
                result.border[candidate] = count
        current_level = next_level
        size += 1
    return result


def mine_blocks(blocks, minsup: float, max_size: int | None = None) -> MiningResult:
    """Apriori over a list of :class:`~repro.core.blocks.Block` objects."""
    block_list = list(blocks)

    def factory():
        for block in block_list:
            yield from block.iter_records()

    return apriori(factory, minsup, max_size=max_size)
