"""Intersection kernels for ECUT-style TID-list counting (§3.1.1).

Every ECUT/ECUT+ support count is ultimately an intersection of sorted,
duplicate-free TID arrays.  ``np.intersect1d`` re-sorts its (already
sorted) inputs on every call, so this module owns the intersection
primitives instead — demonlint rule DML006 bans raw ``np.intersect1d``
everywhere else in ``src/repro``:

* :func:`intersect_gallop` — binary-searches the smaller array into the
  larger one; ``O(|small| · log |large|)``, the right kernel when the
  list sizes are skewed (a rare item against a common one).
* :func:`intersect_merge` — concatenates and stable-sorts; numpy's
  stable sort on integer keys is a radix sort, so merging two already
  sorted runs costs ``O(|a| + |b|)`` rather than a comparison sort.
* :class:`BitmapTidList` — a packed ``uint64`` dense representation of
  one block's list (one bit per transaction of the block); intersection
  is a word-wise AND + popcount, and a bitmap∧sorted-array hybrid
  probes each array element against the bitmap in ``O(|array|)``.
* :func:`intersect_pair` / :func:`intersect_many` — the adaptive
  dispatcher the stores and counters use; :func:`force_kernel` pins the
  array∧array choice for ablation benchmarks.

The representations carry their *physical* size so the byte-metered I/O
accounting (``storage/iostats.py``) charges what a disk would serve:
``TID_BYTES`` per tid for sorted arrays, eight bytes per word for
bitmaps.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from typing import Union

import numpy as np

#: Logical bytes per stored transaction identifier.
TID_BYTES = 4

#: dtype used for TID arrays.
TID_DTYPE = np.int64

#: Use the galloping kernel when the larger array is at least this many
#: times the smaller one; below the ratio the linear merge wins because
#: its per-element constant is lower than a binary search.
GALLOP_RATIO = 8

#: Bits per bitmap word.
WORD_BITS = 64

#: Bytes per bitmap word (charged per word fetched).
WORD_BYTES = 8

#: Blocks smaller than this keep plain sorted arrays: a bitmap's word
#: overhead dominates and the arrays are tiny anyway.
BITMAP_MIN_BLOCK = 128

#: An item's list switches to the bitmap representation when it holds at
#: least this fraction of the block's transactions.  At ``1/16`` the
#: bitmap is already half the array's size (``size/8`` bytes vs
#: ``4 · len ≥ size/4``) and word-AND intersection beats any
#: element-wise kernel.
BITMAP_DENSITY = 1.0 / 16.0


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def _popcount(words: np.ndarray) -> int:
        return int(np.bitwise_count(words).sum())

else:  # pragma: no cover - exercised only on numpy < 2.0

    def _popcount(words: np.ndarray) -> int:
        return int(np.unpackbits(words.view(np.uint8)).sum())


def _empty() -> np.ndarray:
    return np.empty(0, dtype=TID_DTYPE)


class BitmapTidList:
    """One block's TID-list as a packed bit-per-transaction bitmap.

    Bit ``i`` of the bitmap corresponds to global tid ``base + i``; the
    bitmap spans exactly the block's ``size`` transactions (the 0/1
    property guarantees a list never crosses a block boundary).

    Attributes:
        words: Packed ``uint64`` words, little-endian bit order.
        base: Global tid of the block's first transaction.
        size: Number of transactions in the block.
        count: Number of set bits (the item's support in the block).
    """

    __slots__ = ("words", "base", "size", "count")

    def __init__(self, words: np.ndarray, base: int, size: int, count: int):
        self.words = words
        self.base = base
        self.size = size
        self.count = count

    @classmethod
    def from_array(cls, tids: np.ndarray, base: int, size: int) -> "BitmapTidList":
        """Pack a sorted tid array from one block into a bitmap."""
        words = np.zeros((size + WORD_BITS - 1) // WORD_BITS, dtype=np.uint64)
        offsets = (np.asarray(tids, dtype=TID_DTYPE) - base).astype(np.uint64)
        np.bitwise_or.at(
            words,
            offsets >> np.uint64(6),
            np.uint64(1) << (offsets & np.uint64(63)),
        )
        words.flags.writeable = False
        return cls(words, base, size, len(tids))

    def __len__(self) -> int:
        return self.count

    @property
    def nbytes(self) -> int:
        """Physical size: what a fetch of this list is charged."""
        return self.words.nbytes

    def to_array(self) -> np.ndarray:
        """Unpack to the equivalent sorted tid array."""
        bits = np.unpackbits(self.words.view(np.uint8), bitorder="little")
        return np.flatnonzero(bits[: self.size]).astype(TID_DTYPE) + self.base


#: A TID-list in either physical representation.
TidList = Union[np.ndarray, BitmapTidList]


def list_len(tids: TidList) -> int:
    """Cardinality of a list in either representation."""
    return len(tids)


def list_nbytes(tids: TidList) -> int:
    """Physical bytes a fetch of this list is charged."""
    if isinstance(tids, BitmapTidList):
        return tids.nbytes
    return TID_BYTES * len(tids)


def as_array(tids: TidList) -> np.ndarray:
    """The sorted-array view of a list in either representation."""
    if isinstance(tids, BitmapTidList):
        return tids.to_array()
    return tids


# ----------------------------------------------------------------------
# Array ∧ array kernels
# ----------------------------------------------------------------------

_FORCED_KERNEL: str | None = None


@contextmanager
def force_kernel(name: str | None) -> Iterator[None]:
    """Pin the array∧array kernel choice (``"gallop"``/``"merge"``).

    Used by the kernel-ablation benchmarks; ``None`` restores adaptive
    dispatch.  Not thread-safe — benchmarks are single-threaded.
    """
    global _FORCED_KERNEL
    if name not in (None, "gallop", "merge"):
        raise ValueError(f"unknown kernel {name!r}; use 'gallop', 'merge', or None")
    previous = _FORCED_KERNEL
    _FORCED_KERNEL = name
    try:
        yield
    finally:
        _FORCED_KERNEL = previous


def intersect_gallop(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersect two sorted unique arrays by searching small into large.

    ``O(|small| · log |large|)`` — wins when the sizes are skewed.
    """
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    if len(small) == 0:
        return _empty()
    positions = np.searchsorted(large, small)
    # Clamped positions (elements past the end of ``large``) compare a
    # too-large element against large[-1], which cannot match.
    return small[np.take(large, positions, mode="clip") == small]


def intersect_merge(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersect two sorted unique arrays by a linear merge.

    The concatenation of two sorted runs is stable-sorted (radix sort
    for integer tids, so effectively ``O(|a| + |b|)``); an element in
    both inputs appears exactly twice, adjacently.
    """
    if len(a) == 0 or len(b) == 0:
        return _empty()
    merged = np.concatenate((a, b))
    merged.sort(kind="stable")
    return merged[:-1][merged[:-1] == merged[1:]]


def intersect_arrays(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Adaptive array∧array intersection (gallop vs merge by skew)."""
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    if len(small) == 0:
        return _empty()
    if _FORCED_KERNEL == "gallop":
        return intersect_gallop(small, large)
    if _FORCED_KERNEL == "merge":
        return intersect_merge(small, large)
    if len(large) >= GALLOP_RATIO * len(small):
        return intersect_gallop(small, large)
    return intersect_merge(small, large)


def count_arrays(a: np.ndarray, b: np.ndarray) -> int:
    """``len(intersect_arrays(a, b))`` without materializing the result.

    Terminal trie edges in the batched counter only need the support
    count, which saves the final fancy-index of each kernel.
    """
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    if len(small) == 0:
        return 0
    if _FORCED_KERNEL != "merge" and (
        _FORCED_KERNEL == "gallop" or len(large) >= GALLOP_RATIO * len(small)
    ):
        positions = np.searchsorted(large, small)
        return int(
            np.count_nonzero(np.take(large, positions, mode="clip") == small)
        )
    merged = np.concatenate((small, large))
    merged.sort(kind="stable")
    return int(np.count_nonzero(merged[:-1] == merged[1:]))


def count_segments(running: np.ndarray, probes: Sequence[np.ndarray]) -> list[int]:
    """``[count_arrays(running, p) for p in probes]`` in one numpy pass.

    All probe arrays are concatenated and searched into ``running``
    together; per-probe hit counts fall out of a prefix sum over the
    match mask.  Empty probes are allowed and count zero.  This is the
    sibling-leaf kernel of the batched counter: one call replaces
    ``len(probes)`` separate intersections.
    """
    if not probes:
        return []
    if len(running) == 0:
        return [0] * len(probes)
    if _FORCED_KERNEL == "merge":
        # Keep the ablation honest: forcing the merge kernel disables
        # the searchsorted-based segmented fast path too.
        return [count_arrays(running, p) for p in probes]
    sizes = np.fromiter((len(p) for p in probes), dtype=np.intp, count=len(probes))
    if int(sizes.sum()) == 0:
        return [0] * len(probes)
    concatenated = np.concatenate(probes)
    positions = np.searchsorted(running, concatenated)
    hits = np.take(running, positions, mode="clip") == concatenated
    prefix = np.concatenate(([0], np.cumsum(hits)))
    bounds = np.concatenate(([0], np.cumsum(sizes)))
    return (prefix[bounds[1:]] - prefix[bounds[:-1]]).tolist()


def pack_rows(
    arrays: Sequence[np.ndarray], base_tid: int, block_size: int
) -> np.ndarray:
    """Pack sorted tid arrays of one block into bitset rows.

    Row ``r`` holds ``arrays[r]`` as a little-endian packed bitset (bit
    ``t`` = "tid ``base_tid + t`` present"), byte-compatible with
    :attr:`BitmapTidList.words` viewed as bytes.  The scatter goes
    through a boolean staging buffer processed in bounded-size chunks,
    so packing a whole block's catalog never allocates more than a few
    megabytes of scratch.
    """
    width = (block_size + 7) >> 3
    out = np.empty((len(arrays), width), dtype=np.uint8)
    chunk = max(1, (1 << 23) // max(block_size, 1))
    for start in range(0, len(arrays), chunk):
        part = arrays[start : start + chunk]
        buf = np.zeros((len(part), block_size), dtype=bool)
        flat = np.concatenate(part) - base_tid
        flat += np.repeat(
            np.arange(len(part), dtype=np.int64) * block_size,
            [len(a) for a in part],
        )
        buf.flat[flat] = True
        out[start : start + len(part)] = np.packbits(
            buf, axis=1, bitorder="little"
        )
    return out


# ----------------------------------------------------------------------
# Bitmap kernels
# ----------------------------------------------------------------------


def intersect_bitmaps(a: BitmapTidList, b: BitmapTidList) -> BitmapTidList:
    """Word-wise AND of two bitmaps from the same block."""
    if a.base != b.base or a.size != b.size:
        raise ValueError("bitmap intersection requires lists of the same block")
    words = a.words & b.words
    return BitmapTidList(words, a.base, a.size, _popcount(words))


def intersect_bitmap_array(bitmap: BitmapTidList, array: np.ndarray) -> np.ndarray:
    """Hybrid: keep the sorted tids whose bit is set in the bitmap.

    ``O(|array|)`` — each tid probes one word; the result stays a sorted
    array (the sparser representation once a hybrid step happened).
    """
    if len(array) == 0:
        return _empty()
    offsets = (array - bitmap.base).astype(np.uint64)
    hits = (bitmap.words[offsets >> np.uint64(6)] >> (offsets & np.uint64(63))) & 1
    return array[hits.astype(bool)]


# ----------------------------------------------------------------------
# Unified dispatch
# ----------------------------------------------------------------------


def intersect_pair(a: TidList, b: TidList) -> TidList:
    """Intersect two TID-lists of one block, picking the best kernel.

    bitmap∧bitmap stays a bitmap (word AND); bitmap∧array degrades to a
    sorted array via the hybrid probe; array∧array dispatches between
    galloping and linear merge on size skew.
    """
    a_dense = isinstance(a, BitmapTidList)
    b_dense = isinstance(b, BitmapTidList)
    if a_dense and b_dense:
        return intersect_bitmaps(a, b)
    if a_dense:
        return intersect_bitmap_array(a, b)
    if b_dense:
        return intersect_bitmap_array(b, a)
    return intersect_arrays(a, b)


def count_pair(a: TidList, b: TidList) -> int:
    """``len(intersect_pair(a, b))`` without materializing the result."""
    a_dense = isinstance(a, BitmapTidList)
    b_dense = isinstance(b, BitmapTidList)
    if a_dense and b_dense:
        if a.base != b.base or a.size != b.size:
            raise ValueError("bitmap intersection requires lists of the same block")
        return _popcount(a.words & b.words)
    if a_dense or b_dense:
        bitmap, array = (a, b) if a_dense else (b, a)
        if len(array) == 0:
            return 0
        offsets = (array - bitmap.base).astype(np.uint64)
        hits = (bitmap.words[offsets >> np.uint64(6)] >> (offsets & np.uint64(63))) & 1
        return int(hits.sum())
    return count_arrays(a, b)


def intersect_many(lists: Sequence[TidList]) -> TidList:
    """Intersect several TID-lists of one block, smallest first.

    The running intersection only shrinks; an empty one short-circuits.
    Returns an empty array for no input (callers treat the empty
    itemset separately, as the whole block).
    """
    if not lists:
        return _empty()
    ordered = sorted(lists, key=len)
    running: TidList = ordered[0]
    for other in ordered[1:]:
        if len(running) == 0:
            break
        running = intersect_pair(running, other)
    return running
