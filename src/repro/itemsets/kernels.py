"""Intersection kernels for ECUT-style TID-list counting (§3.1.1).

Every ECUT/ECUT+ support count is ultimately an intersection of sorted,
duplicate-free TID arrays.  ``np.intersect1d`` re-sorts its (already
sorted) inputs on every call, so this module owns the intersection
primitives instead — demonlint rule DML006 bans raw ``np.intersect1d``
everywhere else in ``src/repro``:

* :func:`intersect_gallop` — binary-searches the smaller array into the
  larger one; ``O(|small| · log |large|)``, the right kernel when the
  list sizes are skewed (a rare item against a common one).
* :func:`intersect_merge` — concatenates and stable-sorts; numpy's
  stable sort on integer keys is a radix sort, so merging two already
  sorted runs costs ``O(|a| + |b|)`` rather than a comparison sort.
* :class:`BitmapTidList` — a packed ``uint64`` dense representation of
  one block's list (one bit per transaction of the block); intersection
  is a word-wise AND + popcount, and a bitmap∧sorted-array hybrid
  probes each array element against the bitmap in ``O(|array|)``.
* :func:`intersect_pair` / :func:`intersect_many` — the adaptive
  dispatcher the stores and counters use; :func:`force_kernel` pins the
  array∧array choice for ablation benchmarks.
* :class:`DeltaVarintTidList` / :class:`ChunkedTidList` — compressed
  representations for *cold* blocks (expired from the MRW but still
  selectable by a window-independent BSS; see ``storage/codecs.py``).
  Both intersect in the compressed domain: the varint form decodes at
  most the ~1 Ki-value segments whose ``[first, last]`` range overlaps
  the probe, the roaring form intersects container-by-container — the
  full list is never materialized during counting.

The representations carry their *physical* size so the byte-metered I/O
accounting (``storage/iostats.py``) charges what a disk would serve:
``TID_BYTES`` per tid for sorted arrays, eight bytes per word for
bitmaps.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from typing import Union

import numpy as np

#: Logical bytes per stored transaction identifier.
TID_BYTES = 4

#: dtype used for TID arrays.
TID_DTYPE = np.int64

#: Use the galloping kernel when the larger array is at least this many
#: times the smaller one; below the ratio the linear merge wins because
#: its per-element constant is lower than a binary search.
GALLOP_RATIO = 8

#: Bits per bitmap word.
WORD_BITS = 64

#: Bytes per bitmap word (charged per word fetched).
WORD_BYTES = 8

#: Blocks smaller than this keep plain sorted arrays: a bitmap's word
#: overhead dominates and the arrays are tiny anyway.
BITMAP_MIN_BLOCK = 128

#: An item's list switches to the bitmap representation when it holds at
#: least this fraction of the block's transactions.  At ``1/16`` the
#: bitmap is already half the array's size (``size/8`` bytes vs
#: ``4 · len ≥ size/4``) and word-AND intersection beats any
#: element-wise kernel.
BITMAP_DENSITY = 1.0 / 16.0


if hasattr(np, "bitwise_count"):  # numpy >= 2.0

    def _popcount(words: np.ndarray) -> int:
        return int(np.bitwise_count(words).sum())

else:  # pragma: no cover - exercised only on numpy < 2.0

    def _popcount(words: np.ndarray) -> int:
        return int(np.unpackbits(words.view(np.uint8)).sum())


def _empty() -> np.ndarray:
    return np.empty(0, dtype=TID_DTYPE)


class BitmapTidList:
    """One block's TID-list as a packed bit-per-transaction bitmap.

    Bit ``i`` of the bitmap corresponds to global tid ``base + i``; the
    bitmap spans exactly the block's ``size`` transactions (the 0/1
    property guarantees a list never crosses a block boundary).

    Attributes:
        words: Packed ``uint64`` words, little-endian bit order.
        base: Global tid of the block's first transaction.
        size: Number of transactions in the block.
        count: Number of set bits (the item's support in the block).
    """

    __slots__ = ("words", "base", "size", "count")

    def __init__(self, words: np.ndarray, base: int, size: int, count: int):
        self.words = words
        self.base = base
        self.size = size
        self.count = count

    @classmethod
    def from_array(cls, tids: np.ndarray, base: int, size: int) -> "BitmapTidList":
        """Pack a sorted tid array from one block into a bitmap."""
        words = np.zeros((size + WORD_BITS - 1) // WORD_BITS, dtype=np.uint64)
        offsets = (np.asarray(tids, dtype=TID_DTYPE) - base).astype(np.uint64)
        np.bitwise_or.at(
            words,
            offsets >> np.uint64(6),
            np.uint64(1) << (offsets & np.uint64(63)),
        )
        words.flags.writeable = False
        return cls(words, base, size, len(tids))

    def __len__(self) -> int:
        return self.count

    @property
    def nbytes(self) -> int:
        """Physical size: what a fetch of this list is charged."""
        return self.words.nbytes

    def to_array(self) -> np.ndarray:
        """Unpack to the equivalent sorted tid array."""
        bits = np.unpackbits(self.words.view(np.uint8), bitorder="little")
        return np.flatnonzero(bits[: self.size]).astype(TID_DTYPE) + self.base


#: Values per independently decodable segment of a varint-compressed
#: list.  Each segment restarts the delta chain, so a probe touching a
#: narrow tid range decodes only the overlapping segments.
VARINT_SEGMENT = 1024


class DeltaVarintTidList:
    """One block's TID-list as segmented delta+varint bytes.

    The sorted tids split into :data:`VARINT_SEGMENT`-value segments,
    each encoded as a standalone ``delta-varint`` blob (its first value
    is absolute).  ``firsts``/``lasts`` index the segment tid ranges so
    intersection against a sorted probe decodes only the segments the
    probe can touch.

    Attributes:
        blob: Concatenated per-segment varint bytes.
        offsets: Byte offset of each segment in ``blob`` (plus a final
            sentinel equal to ``len(blob)``).
        firsts: First tid of each segment.
        lasts: Last tid of each segment.
        base: Global tid of the block's first transaction.
        size: Number of transactions in the block.
        count: Number of tids in the list.
    """

    __slots__ = ("blob", "offsets", "firsts", "lasts", "base", "size", "count")

    def __init__(
        self,
        blob: bytes,
        offsets: np.ndarray,
        firsts: np.ndarray,
        lasts: np.ndarray,
        base: int,
        size: int,
        count: int,
    ):
        self.blob = blob
        self.offsets = offsets
        self.firsts = firsts
        self.lasts = lasts
        self.base = base
        self.size = size
        self.count = count

    @classmethod
    def from_array(
        cls, tids: np.ndarray, base: int, size: int
    ) -> "DeltaVarintTidList":
        """Compress a sorted tid array from one block."""
        from ..storage.codecs import DeltaVarintCodec

        array = np.asarray(tids, dtype=TID_DTYPE)
        codec = DeltaVarintCodec()
        parts: list[bytes] = []
        offsets = [0]
        for start in range(0, len(array), VARINT_SEGMENT):
            segment = array[start : start + VARINT_SEGMENT]
            parts.append(codec.encode(segment))
            offsets.append(offsets[-1] + len(parts[-1]))
        n_segments = len(parts)
        firsts = array[::VARINT_SEGMENT].copy()
        lasts = array[VARINT_SEGMENT - 1 :: VARINT_SEGMENT]
        if len(lasts) < n_segments:
            lasts = np.concatenate((lasts, array[-1:]))
        else:
            lasts = lasts.copy()
        firsts.flags.writeable = False
        lasts.flags.writeable = False
        offset_array = np.asarray(offsets, dtype=np.int64)
        offset_array.flags.writeable = False
        return cls(
            b"".join(parts), offset_array, firsts, lasts, base, size, len(array)
        )

    def __len__(self) -> int:
        return self.count

    @property
    def nbytes(self) -> int:
        """Physical size: what a fetch of this list is charged."""
        return len(self.blob)

    @property
    def num_segments(self) -> int:
        return len(self.firsts)

    def decode_segment(self, index: int) -> np.ndarray:
        """Decode one segment to its sorted tid array."""
        from ..storage.codecs import DeltaVarintCodec

        lo = int(self.offsets[index])
        hi = int(self.offsets[index + 1])
        count = min(VARINT_SEGMENT, self.count - index * VARINT_SEGMENT)
        return DeltaVarintCodec().decode(self.blob[lo:hi], count)

    def iter_segments(self) -> Iterator[np.ndarray]:
        for index in range(self.num_segments):
            yield self.decode_segment(index)

    def to_array(self) -> np.ndarray:
        """Decompress to the equivalent sorted tid array."""
        if self.count == 0:
            return _empty()
        return np.concatenate(list(self.iter_segments()))

    def _overlapping(self, probe: np.ndarray) -> Iterator[tuple[int, np.ndarray]]:
        """Segments the sorted ``probe`` can intersect, with its slice."""
        if len(probe) == 0 or self.count == 0:
            return
        los = np.searchsorted(probe, self.firsts, side="left")
        his = np.searchsorted(probe, self.lasts, side="right")
        for index in np.flatnonzero(his > los):
            yield int(index), probe[los[index] : his[index]]

    def intersect_array(self, probe: np.ndarray) -> np.ndarray:
        """Intersect with a sorted array, decoding overlapping segments."""
        parts = [
            intersect_arrays(self.decode_segment(index), piece)
            for index, piece in self._overlapping(probe)
        ]
        parts = [p for p in parts if len(p)]
        if not parts:
            return _empty()
        return np.concatenate(parts)

    def count_array(self, probe: np.ndarray) -> int:
        """``len(intersect_array(probe))`` without materializing it."""
        return sum(
            count_arrays(self.decode_segment(index), piece)
            for index, piece in self._overlapping(probe)
        )


class ChunkedTidList:
    """One block's TID-list as roaring-style containers (cold blocks).

    Local coordinates (``tid - base``) partition into ``2**16``-wide
    containers; sparse containers store sorted ``uint16`` arrays, dense
    ones packed 1024-word bitmaps.  Intersection proceeds container by
    container, never materializing the whole list.

    Attributes:
        keys: Sorted container keys (``local >> 16``), ``int64``.
        kinds: Per-container kind (0 = array, 1 = bitmap), ``uint8``.
        payloads: Per-container payload arrays.
        base: Global tid of the block's first transaction.
        size: Number of transactions in the block.
        count: Number of tids in the list.
    """

    __slots__ = ("keys", "kinds", "payloads", "base", "size", "count")

    def __init__(
        self,
        keys: np.ndarray,
        kinds: np.ndarray,
        payloads: list[np.ndarray],
        base: int,
        size: int,
        count: int,
    ):
        self.keys = keys
        self.kinds = kinds
        self.payloads = payloads
        self.base = base
        self.size = size
        self.count = count

    @classmethod
    def from_array(cls, tids: np.ndarray, base: int, size: int) -> "ChunkedTidList":
        """Compress a sorted tid array from one block."""
        from ..storage.codecs import (
            ARRAY_CONTAINER_MAX,
            pack_container,
            split_containers,
        )

        local = np.asarray(tids, dtype=TID_DTYPE) - base
        keys: list[int] = []
        kinds: list[int] = []
        payloads: list[np.ndarray] = []
        for key, low in split_containers(local):
            keys.append(key)
            if len(low) > ARRAY_CONTAINER_MAX:
                kinds.append(1)
                payloads.append(pack_container(low))
            else:
                kinds.append(0)
                payloads.append(low)
        for payload in payloads:
            payload.flags.writeable = False
        key_array = np.asarray(keys, dtype=np.int64)
        kind_array = np.asarray(kinds, dtype=np.uint8)
        key_array.flags.writeable = False
        kind_array.flags.writeable = False
        return cls(key_array, kind_array, payloads, base, size, len(tids))

    def __len__(self) -> int:
        return self.count

    @property
    def nbytes(self) -> int:
        """Physical size: payload bytes plus a 12-byte header/container."""
        return sum(p.nbytes for p in self.payloads) + 12 * len(self.keys)

    def _container_array(self, index: int) -> np.ndarray:
        """Sorted ``uint16`` low halves of container ``index``."""
        from ..storage.codecs import unpack_container

        if self.kinds[index]:
            return unpack_container(self.payloads[index])
        return self.payloads[index]

    def to_array(self) -> np.ndarray:
        """Decompress to the equivalent sorted tid array."""
        if self.count == 0:
            return _empty()
        parts = [
            self._container_array(index).astype(TID_DTYPE)
            + (int(self.keys[index]) << 16)
            + self.base
            for index in range(len(self.keys))
        ]
        return np.concatenate(parts)

    def intersect_array(self, probe: np.ndarray) -> np.ndarray:
        """Intersect with a sorted global tid array, per container."""
        if len(probe) == 0 or self.count == 0:
            return _empty()
        local = probe - self.base
        probe_keys = local >> np.int64(16)
        los = np.searchsorted(probe_keys, self.keys, side="left")
        his = np.searchsorted(probe_keys, self.keys, side="right")
        parts: list[np.ndarray] = []
        for index in np.flatnonzero(his > los):
            piece = local[los[index] : his[index]]
            low = (piece & np.int64(0xFFFF)).astype(np.uint64)
            if self.kinds[index]:
                words = self.payloads[index]
                hits = (words[low >> np.uint64(6)] >> (low & np.uint64(63))) & 1
                hit_mask = hits.astype(bool)
            else:
                container = self.payloads[index]
                positions = np.searchsorted(container, low.astype(np.uint16))
                hit_mask = (
                    np.take(container, positions, mode="clip")
                    == low.astype(np.uint16)
                )
            if hit_mask.any():
                parts.append(probe[los[index] : his[index]][hit_mask])
        if not parts:
            return _empty()
        return np.concatenate(parts)

    def count_array(self, probe: np.ndarray) -> int:
        """``len(intersect_array(probe))`` without materializing it."""
        if len(probe) == 0 or self.count == 0:
            return 0
        return len(self.intersect_array(probe))

    def _dense_words(self, dense: "BitmapTidList", index: int) -> np.ndarray:
        """The 1024-word slice of a dense block bitmap for container ``index``."""
        key = int(self.keys[index])
        words = dense.words[key * 1024 : (key + 1) * 1024]
        if len(words) < 1024:
            padded = np.zeros(1024, dtype=np.uint64)
            padded[: len(words)] = words
            return padded
        return words

    def intersect_dense(self, dense: "BitmapTidList") -> "ChunkedTidList":
        """Intersect with a same-block dense bitmap, container-wise."""
        if dense.base != self.base or dense.size != self.size:
            raise ValueError("bitmap intersection requires lists of the same block")
        keys: list[int] = []
        kinds: list[int] = []
        payloads: list[np.ndarray] = []
        count = 0
        for index in range(len(self.keys)):
            words = self._dense_words(dense, index)
            if self.kinds[index]:
                anded = self.payloads[index] & words
                hit = _popcount(anded)
                if hit:
                    keys.append(int(self.keys[index]))
                    kinds.append(1)
                    payloads.append(anded)
                    count += hit
            else:
                low = self.payloads[index].astype(np.uint64)
                hits = (words[low >> np.uint64(6)] >> (low & np.uint64(63))) & 1
                mask = hits.astype(bool)
                if mask.any():
                    keys.append(int(self.keys[index]))
                    kinds.append(0)
                    payloads.append(self.payloads[index][mask])
                    count += int(mask.sum())
        return ChunkedTidList(
            np.asarray(keys, dtype=np.int64),
            np.asarray(kinds, dtype=np.uint8),
            payloads,
            self.base,
            self.size,
            count,
        )

    def intersect_chunked(self, other: "ChunkedTidList") -> "ChunkedTidList":
        """Intersect with another roaring list of the same block."""
        if other.base != self.base or other.size != self.size:
            raise ValueError("bitmap intersection requires lists of the same block")
        keys: list[int] = []
        kinds: list[int] = []
        payloads: list[np.ndarray] = []
        count = 0
        positions = np.searchsorted(other.keys, self.keys)
        matched = (
            np.take(other.keys, positions, mode="clip") == self.keys
            if len(other.keys)
            else np.zeros(len(self.keys), dtype=bool)
        )
        for index in np.flatnonzero(matched):
            mine = index
            theirs = int(positions[index])
            a_bitmap = bool(self.kinds[mine])
            b_bitmap = bool(other.kinds[theirs])
            if a_bitmap and b_bitmap:
                anded = self.payloads[mine] & other.payloads[theirs]
                hit = _popcount(anded)
                if hit:
                    keys.append(int(self.keys[mine]))
                    kinds.append(1)
                    payloads.append(anded)
                    count += hit
                continue
            if a_bitmap or b_bitmap:
                words = self.payloads[mine] if a_bitmap else other.payloads[theirs]
                array = other.payloads[theirs] if a_bitmap else self.payloads[mine]
                low = array.astype(np.uint64)
                hits = (words[low >> np.uint64(6)] >> (low & np.uint64(63))) & 1
                mask = hits.astype(bool)
            else:
                small = self.payloads[mine]
                large = other.payloads[theirs]
                if len(small) > len(large):
                    small, large = large, small
                spots = np.searchsorted(large, small)
                mask = np.take(large, spots, mode="clip") == small
                array = small
            if mask.any():
                keys.append(int(self.keys[mine]))
                kinds.append(0)
                payloads.append(array[mask])
                count += int(mask.sum())
        return ChunkedTidList(
            np.asarray(keys, dtype=np.int64),
            np.asarray(kinds, dtype=np.uint8),
            payloads,
            self.base,
            self.size,
            count,
        )


#: A TID-list in any physical representation.
TidList = Union[np.ndarray, BitmapTidList, DeltaVarintTidList, ChunkedTidList]

#: The compressed (cold-tier) representations.
CompressedTidList = Union[DeltaVarintTidList, ChunkedTidList]

_COMPRESSED_TYPES = (DeltaVarintTidList, ChunkedTidList)


def compress_list(tids: TidList, base: int, size: int) -> TidList:
    """Re-encode one list for the cold tier, keeping the smaller form.

    Sorted arrays become :class:`DeltaVarintTidList`s (typically 1-2
    bytes per tid against :data:`TID_BYTES`); dense bitmaps become
    roaring :class:`ChunkedTidList`s.  Either conversion is kept only
    when it actually shrinks the list — a packed bitmap at exactly the
    :data:`BITMAP_DENSITY` cutoff is already near-optimal, and a
    two-element array has nothing to gain — so compressing never grows
    a block.  The choice depends only on the list's contents, keeping
    it deterministic across backends and restarts.  Already-compressed
    lists pass through unchanged.
    """
    if isinstance(tids, _COMPRESSED_TYPES):
        return tids
    if isinstance(tids, BitmapTidList):
        chunked = ChunkedTidList.from_array(tids.to_array(), base, size)
        return chunked if chunked.nbytes < tids.nbytes else tids
    varint = DeltaVarintTidList.from_array(tids, base, size)
    return varint if varint.nbytes < list_nbytes(tids) else tids


def list_len(tids: TidList) -> int:
    """Cardinality of a list in any representation."""
    return len(tids)


def list_nbytes(tids: TidList) -> int:
    """Physical bytes a fetch of this list is charged."""
    if isinstance(tids, np.ndarray):
        return TID_BYTES * len(tids)
    return tids.nbytes


def as_array(tids: TidList) -> np.ndarray:
    """The sorted-array view of a list in any representation."""
    if isinstance(tids, np.ndarray):
        return tids
    return tids.to_array()


# ----------------------------------------------------------------------
# Array ∧ array kernels
# ----------------------------------------------------------------------

_FORCED_KERNEL: str | None = None


@contextmanager
def force_kernel(name: str | None) -> Iterator[None]:
    """Pin the array∧array kernel choice (``"gallop"``/``"merge"``).

    Used by the kernel-ablation benchmarks; ``None`` restores adaptive
    dispatch.  Not thread-safe — benchmarks are single-threaded.
    """
    global _FORCED_KERNEL
    if name not in (None, "gallop", "merge"):
        raise ValueError(f"unknown kernel {name!r}; use 'gallop', 'merge', or None")
    previous = _FORCED_KERNEL
    _FORCED_KERNEL = name
    try:
        yield
    finally:
        _FORCED_KERNEL = previous


def intersect_gallop(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersect two sorted unique arrays by searching small into large.

    ``O(|small| · log |large|)`` — wins when the sizes are skewed.
    """
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    if len(small) == 0:
        return _empty()
    positions = np.searchsorted(large, small)
    # Clamped positions (elements past the end of ``large``) compare a
    # too-large element against large[-1], which cannot match.
    return small[np.take(large, positions, mode="clip") == small]


def intersect_merge(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersect two sorted unique arrays by a linear merge.

    The concatenation of two sorted runs is stable-sorted (radix sort
    for integer tids, so effectively ``O(|a| + |b|)``); an element in
    both inputs appears exactly twice, adjacently.
    """
    if len(a) == 0 or len(b) == 0:
        return _empty()
    merged = np.concatenate((a, b))
    merged.sort(kind="stable")
    return merged[:-1][merged[:-1] == merged[1:]]


def intersect_arrays(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Adaptive array∧array intersection (gallop vs merge by skew)."""
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    if len(small) == 0:
        return _empty()
    if _FORCED_KERNEL == "gallop":
        return intersect_gallop(small, large)
    if _FORCED_KERNEL == "merge":
        return intersect_merge(small, large)
    if len(large) >= GALLOP_RATIO * len(small):
        return intersect_gallop(small, large)
    return intersect_merge(small, large)


def count_arrays(a: np.ndarray, b: np.ndarray) -> int:
    """``len(intersect_arrays(a, b))`` without materializing the result.

    Terminal trie edges in the batched counter only need the support
    count, which saves the final fancy-index of each kernel.
    """
    small, large = (a, b) if len(a) <= len(b) else (b, a)
    if len(small) == 0:
        return 0
    if _FORCED_KERNEL != "merge" and (
        _FORCED_KERNEL == "gallop" or len(large) >= GALLOP_RATIO * len(small)
    ):
        positions = np.searchsorted(large, small)
        return int(
            np.count_nonzero(np.take(large, positions, mode="clip") == small)
        )
    merged = np.concatenate((small, large))
    merged.sort(kind="stable")
    return int(np.count_nonzero(merged[:-1] == merged[1:]))


def count_segments(running: np.ndarray, probes: Sequence[np.ndarray]) -> list[int]:
    """``[count_arrays(running, p) for p in probes]`` in one numpy pass.

    All probe arrays are concatenated and searched into ``running``
    together; per-probe hit counts fall out of a prefix sum over the
    match mask.  Empty probes are allowed and count zero.  This is the
    sibling-leaf kernel of the batched counter: one call replaces
    ``len(probes)`` separate intersections.
    """
    if not probes:
        return []
    if len(running) == 0:
        return [0] * len(probes)
    if _FORCED_KERNEL == "merge":
        # Keep the ablation honest: forcing the merge kernel disables
        # the searchsorted-based segmented fast path too.
        return [count_arrays(running, p) for p in probes]
    sizes = np.fromiter((len(p) for p in probes), dtype=np.intp, count=len(probes))
    if int(sizes.sum()) == 0:
        return [0] * len(probes)
    concatenated = np.concatenate(probes)
    positions = np.searchsorted(running, concatenated)
    hits = np.take(running, positions, mode="clip") == concatenated
    prefix = np.concatenate(([0], np.cumsum(hits)))
    bounds = np.concatenate(([0], np.cumsum(sizes)))
    return (prefix[bounds[1:]] - prefix[bounds[:-1]]).tolist()


def pack_rows(
    arrays: Sequence[np.ndarray], base_tid: int, block_size: int
) -> np.ndarray:
    """Pack sorted tid arrays of one block into bitset rows.

    Row ``r`` holds ``arrays[r]`` as a little-endian packed bitset (bit
    ``t`` = "tid ``base_tid + t`` present"), byte-compatible with
    :attr:`BitmapTidList.words` viewed as bytes.  The scatter goes
    through a boolean staging buffer processed in bounded-size chunks,
    so packing a whole block's catalog never allocates more than a few
    megabytes of scratch.
    """
    width = (block_size + 7) >> 3
    out = np.empty((len(arrays), width), dtype=np.uint8)
    chunk = max(1, (1 << 23) // max(block_size, 1))
    for start in range(0, len(arrays), chunk):
        part = arrays[start : start + chunk]
        buf = np.zeros((len(part), block_size), dtype=bool)
        flat = np.concatenate(part) - base_tid
        flat += np.repeat(
            np.arange(len(part), dtype=np.int64) * block_size,
            [len(a) for a in part],
        )
        buf.flat[flat] = True
        out[start : start + len(part)] = np.packbits(
            buf, axis=1, bitorder="little"
        )
    return out


# ----------------------------------------------------------------------
# Bitmap kernels
# ----------------------------------------------------------------------


def intersect_bitmaps(a: BitmapTidList, b: BitmapTidList) -> BitmapTidList:
    """Word-wise AND of two bitmaps from the same block."""
    if a.base != b.base or a.size != b.size:
        raise ValueError("bitmap intersection requires lists of the same block")
    words = a.words & b.words
    return BitmapTidList(words, a.base, a.size, _popcount(words))


def intersect_bitmap_array(bitmap: BitmapTidList, array: np.ndarray) -> np.ndarray:
    """Hybrid: keep the sorted tids whose bit is set in the bitmap.

    ``O(|array|)`` — each tid probes one word; the result stays a sorted
    array (the sparser representation once a hybrid step happened).
    """
    if len(array) == 0:
        return _empty()
    offsets = (array - bitmap.base).astype(np.uint64)
    hits = (bitmap.words[offsets >> np.uint64(6)] >> (offsets & np.uint64(63))) & 1
    return array[hits.astype(bool)]


# ----------------------------------------------------------------------
# Compressed-domain kernels
# ----------------------------------------------------------------------


def _concat(parts: list[np.ndarray]) -> np.ndarray:
    parts = [p for p in parts if len(p)]
    if not parts:
        return _empty()
    return np.concatenate(parts)


def _intersect_compressed(a: TidList, b: TidList) -> TidList:
    """Dispatch when at least one operand is a compressed list.

    Every case stays in the compressed domain: varint operands decode
    one ~1 Ki-value segment at a time, roaring operands intersect per
    container.  roaring∧roaring and roaring∧dense-bitmap keep the
    roaring representation; every other pairing degrades to a sorted
    array (the sparser representation once a hybrid step happened).
    """
    if not isinstance(a, _COMPRESSED_TYPES):
        a, b = b, a
    if isinstance(b, np.ndarray):
        return a.intersect_array(b)
    if isinstance(a, ChunkedTidList):
        if isinstance(b, BitmapTidList):
            return a.intersect_dense(b)
        if isinstance(b, ChunkedTidList):
            return a.intersect_chunked(b)
        # roaring ∧ varint: decode the varint side segment-wise and
        # probe each segment against the containers.
        return _concat([a.intersect_array(seg) for seg in b.iter_segments()])
    # ``a`` is varint.
    if isinstance(b, BitmapTidList):
        return _concat(
            [intersect_bitmap_array(b, seg) for seg in a.iter_segments()]
        )
    if isinstance(b, ChunkedTidList):
        return _concat([b.intersect_array(seg) for seg in a.iter_segments()])
    # varint ∧ varint: decode the smaller list segment-wise; each
    # decoded segment prunes the larger list's segment index, so the
    # larger side is never fully decompressed.
    small, large = (a, b) if a.count <= b.count else (b, a)
    return _concat([large.intersect_array(seg) for seg in small.iter_segments()])


def _count_compressed(a: TidList, b: TidList) -> int:
    """Support count for :func:`_intersect_compressed` pairings."""
    if not isinstance(a, _COMPRESSED_TYPES):
        a, b = b, a
    if isinstance(b, np.ndarray):
        return a.count_array(b)
    if isinstance(a, ChunkedTidList):
        if isinstance(b, BitmapTidList):
            return a.intersect_dense(b).count
        if isinstance(b, ChunkedTidList):
            return a.intersect_chunked(b).count
        return sum(a.count_array(seg) for seg in b.iter_segments())
    if isinstance(b, BitmapTidList):
        return sum(count_pair(b, seg) for seg in a.iter_segments())
    if isinstance(b, ChunkedTidList):
        return sum(b.count_array(seg) for seg in a.iter_segments())
    small, large = (a, b) if a.count <= b.count else (b, a)
    return sum(large.count_array(seg) for seg in small.iter_segments())


# ----------------------------------------------------------------------
# Unified dispatch
# ----------------------------------------------------------------------


def intersect_pair(a: TidList, b: TidList) -> TidList:
    """Intersect two TID-lists of one block, picking the best kernel.

    bitmap∧bitmap stays a bitmap (word AND); bitmap∧array degrades to a
    sorted array via the hybrid probe; array∧array dispatches between
    galloping and linear merge on size skew; compressed operands route
    through the compressed-domain kernels (:func:`_intersect_compressed`)
    without full decompression.
    """
    if isinstance(a, _COMPRESSED_TYPES) or isinstance(b, _COMPRESSED_TYPES):
        return _intersect_compressed(a, b)
    a_dense = isinstance(a, BitmapTidList)
    b_dense = isinstance(b, BitmapTidList)
    if a_dense and b_dense:
        return intersect_bitmaps(a, b)
    if a_dense:
        return intersect_bitmap_array(a, b)
    if b_dense:
        return intersect_bitmap_array(b, a)
    return intersect_arrays(a, b)


def count_pair(a: TidList, b: TidList) -> int:
    """``len(intersect_pair(a, b))`` without materializing the result."""
    if isinstance(a, _COMPRESSED_TYPES) or isinstance(b, _COMPRESSED_TYPES):
        return _count_compressed(a, b)
    a_dense = isinstance(a, BitmapTidList)
    b_dense = isinstance(b, BitmapTidList)
    if a_dense and b_dense:
        if a.base != b.base or a.size != b.size:
            raise ValueError("bitmap intersection requires lists of the same block")
        return _popcount(a.words & b.words)
    if a_dense or b_dense:
        bitmap, array = (a, b) if a_dense else (b, a)
        if len(array) == 0:
            return 0
        offsets = (array - bitmap.base).astype(np.uint64)
        hits = (bitmap.words[offsets >> np.uint64(6)] >> (offsets & np.uint64(63))) & 1
        return int(hits.sum())
    return count_arrays(a, b)


def intersect_many(lists: Sequence[TidList]) -> TidList:
    """Intersect several TID-lists of one block, smallest first.

    The running intersection only shrinks; an empty one short-circuits.
    Returns an empty array for no input (callers treat the empty
    itemset separately, as the whole block).
    """
    if not lists:
        return _empty()
    ordered = sorted(lists, key=len)
    running: TidList = ordered[0]
    for other in ordered[1:]:
        if len(running) == 0:
            break
        running = intersect_pair(running, other)
    return running
