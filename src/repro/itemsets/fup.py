"""FUP (Cheung et al. 1996) — the first incremental itemset maintainer.

Included as the related-work baseline (§6): FUP proceeds level-wise and
may rescan the *old* database once per level, which is exactly the cost
BORDERS avoids by keeping the negative border.  The level-``k`` logic:

* **Winners** — old frequent ``k``-itemsets have stored counts; one scan
  of the increment updates them, and those below the new threshold drop.
* **New candidates** — Apriori candidates over the updated ``(k-1)``
  level that were not previously frequent.  FUP's pruning trick: a new
  winner must be frequent *within the increment itself* (otherwise its
  overall support cannot have risen above the threshold), so candidates
  are first counted on the increment alone and only the survivors incur
  a scan of the old database.

The maintainer keeps only ``L`` (no negative border) — its whole point
is what not having the border costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.contracts import maintainer_contract, pure_unless_cloned
from repro.core.blocks import Block
from repro.core.maintainer import IncrementalModelMaintainer
from repro.itemsets.apriori import apriori
from repro.itemsets.itemset import (
    Itemset,
    Transaction,
    generate_candidates,
    minimum_count,
)
from repro.itemsets.model import FrequentItemsetModel
from repro.itemsets.prefix_tree import PrefixTree
from repro.itemsets.borders import ItemsetMiningContext
from repro.storage.telemetry import DiagnosticsLog, Telemetry


@dataclass
class FUPStats:
    """Accounting for one FUP maintenance step.

    Attributes:
        old_db_scans: Full scans of the pre-existing database performed
            (one per level that produced surviving new candidates).
        levels: Number of levels processed.
        seconds: Wall-clock for the whole step.
    """

    old_db_scans: int = 0
    levels: int = 0
    seconds: float = 0.0


@maintainer_contract
class FUPMaintainer(IncrementalModelMaintainer[FrequentItemsetModel, Transaction]):
    """FUP incremental maintenance of ``L`` under block additions.

    Args:
        minsup: Minimum support threshold ``κ``.
        context: Shared storage; a private one is created if omitted.
    """

    def __init__(self, minsup: float, context: ItemsetMiningContext | None = None):
        if not 0 < minsup < 1:
            raise ValueError(f"minimum support must be in (0, 1), got {minsup}")
        self.minsup = minsup
        self.context = context if context is not None else ItemsetMiningContext()
        #: Observability side channel (DML012: pure methods report
        #: their costs here instead of storing run state on ``self``).
        self.diagnostics = DiagnosticsLog()
        #: Instrumentation spine; a session rebinds this onto its own.
        self.telemetry = Telemetry()

    @property
    def last_stats(self) -> FUPStats:
        """Stats of the most recent ``add_block``."""
        return self.diagnostics.latest("fup.update", FUPStats())

    def _register(self, block: Block[Transaction]) -> None:
        if block.block_id not in self.context.block_store:
            self.context.block_store.append_block(block)

    def empty_model(self) -> FrequentItemsetModel:
        return FrequentItemsetModel(minsup=self.minsup)

    def build(self, blocks) -> FrequentItemsetModel:
        """``A_M(D, φ)``: Apriori over the given blocks (border discarded)."""
        block_list = list(blocks)
        if not block_list:
            return self.empty_model()
        for block in block_list:
            self._register(block)
        block_ids = [b.block_id for b in block_list]

        def factory():
            return self.context.block_store.scan_many(block_ids)

        result = apriori(factory, self.minsup)
        model = FrequentItemsetModel(
            minsup=self.minsup,
            n_transactions=result.n_transactions,
            frequent=dict(result.frequent),
            selected_block_ids=block_ids,
        )
        for block in block_list:
            for transaction in block.iter_records():
                model.items.update(transaction)
        return model

    def clone(self, model: FrequentItemsetModel) -> FrequentItemsetModel:
        return model.copy()

    @pure_unless_cloned
    def add_block(
        self, model: FrequentItemsetModel, block: Block[Transaction]
    ) -> FrequentItemsetModel:
        """FUP level-wise maintenance for one added block."""
        self._register(block)
        stats = FUPStats()
        span = self.telemetry.phase("fup.update").start()

        inc_size = block.num_records
        old_block_ids = list(model.selected_block_ids)
        new_total = model.n_transactions + inc_size
        threshold = minimum_count(self.minsup, new_total) if new_total else 1
        inc_threshold = minimum_count(self.minsup, inc_size) if inc_size else 1

        # One scan of the increment: item counts plus counts of every
        # previously frequent itemset.
        old_frequent = model.frequent
        tree = PrefixTree(old_frequent.keys()) if old_frequent else None
        item_counts: dict[int, int] = {}
        for transaction in self.context.block_store.scan(block.block_id):
            if tree is not None:
                tree.count_transaction(transaction)
            for item in transaction:
                item_counts[item] = item_counts.get(item, 0) + 1
        inc_counts = tree.counts() if tree is not None else {}

        new_frequent: dict[Itemset, int] = {}

        # Level 1: winners among old frequent singletons, then new
        # singleton candidates frequent within the increment.
        stats.levels = 1
        for itemset, old_count in old_frequent.items():
            if len(itemset) != 1:
                continue
            updated = old_count + inc_counts.get(itemset, 0)
            if updated >= threshold:
                new_frequent[itemset] = updated
        singleton_inc_counts: dict[Itemset, int] = {
            (item,): count
            for item, count in item_counts.items()
            if (item,) not in old_frequent and count >= inc_threshold
        }
        new_frequent.update(
            self._count_over_old(
                list(singleton_inc_counts),
                old_block_ids,
                singleton_inc_counts,
                threshold,
                stats,
            )
        )

        # Levels 2 and up.
        level = 2
        current_level = {x: c for x, c in new_frequent.items() if len(x) == 1}
        while current_level:
            stats.levels = level
            winners: dict[Itemset, int] = {}
            for itemset, old_count in old_frequent.items():
                if len(itemset) != level:
                    continue
                if not all(
                    subset in new_frequent
                    for subset in self._immediate_subsets(itemset)
                ):
                    continue
                updated = old_count + inc_counts.get(itemset, 0)
                if updated >= threshold:
                    winners[itemset] = updated

            candidates = generate_candidates(current_level.keys())
            fresh = [c for c in candidates if c not in old_frequent]
            # FUP prune: a fresh candidate must be frequent in the
            # increment alone.
            fresh_inc_counts = self._count_on_increment(fresh, block)
            survivors = {
                c: n for c, n in fresh_inc_counts.items() if n >= inc_threshold
            }
            promoted = self._count_over_old(
                list(survivors), old_block_ids, survivors, threshold, stats
            )
            next_level = dict(winners)
            next_level.update(promoted)
            for itemset, count in next_level.items():
                new_frequent[itemset] = count
            current_level = next_level
            level += 1

        model.frequent = new_frequent
        model.border = {}
        model.n_transactions = new_total
        model.selected_block_ids.append(block.block_id)
        model.selected_block_ids.sort()
        model.items.update(item_counts)
        stats.seconds = span.stop()
        self.diagnostics.record("fup.update", stats)
        return model

    @staticmethod
    def _immediate_subsets(itemset: Itemset):
        for i in range(len(itemset)):
            yield itemset[:i] + itemset[i + 1 :]

    def _count_on_increment(
        self, itemsets: list[Itemset], block: Block[Transaction]
    ) -> dict[Itemset, int]:
        if not itemsets:
            return {}
        tree = PrefixTree(itemsets)
        tree.count_dataset(block.iter_records())
        return tree.counts()

    def _count_over_old(
        self,
        itemsets: list[Itemset],
        old_block_ids: list[int],
        inc_counts: dict[Itemset, int],
        threshold: int,
        stats: FUPStats,
    ) -> dict[Itemset, int]:
        """Count candidates over the old database, add increment counts,
        and return the ones meeting the overall threshold."""
        if not itemsets:
            return {}
        result: dict[Itemset, int] = {}
        if old_block_ids:
            stats.old_db_scans += 1
            tree = PrefixTree(itemsets)
            tree.count_dataset(self.context.block_store.scan_many(old_block_ids))
            old_counts = tree.counts()
        else:
            old_counts = {x: 0 for x in itemsets}
        for itemset in itemsets:
            total = old_counts.get(itemset, 0) + inc_counts.get(itemset, 0)
            if total >= threshold:
                result[itemset] = total
        return result
