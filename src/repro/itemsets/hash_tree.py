"""Hash tree for candidate support counting (AMS+96 — paper footnote 7).

The original Apriori counts candidate supports through a *hash tree*:
interior nodes hash the next item into a fixed number of buckets; a
leaf holds up to ``leaf_capacity`` candidates and splits into an
interior node when it overflows (until the depth exhausts the itemset
length).  Counting a transaction descends every bucket its items hash
into, then subset-checks the candidates in the reached leaves.

DEMON's BORDERS uses the prefix tree instead (footnote 7 notes the hash
tree as the alternative); this implementation exists so the choice is
testable — both structures must produce identical counts — and so the
structural trade-off can be measured.  The counting interface matches
:class:`~repro.itemsets.prefix_tree.PrefixTree`.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable

from repro.itemsets.itemset import Itemset, Transaction, contains


class _Node:
    """Interior node (buckets) or leaf (candidate list)."""

    __slots__ = ("buckets", "candidates", "is_leaf")

    def __init__(self) -> None:
        self.buckets: dict[int, _Node] = {}
        self.candidates: list[list] = []  # [itemset, count] pairs
        self.is_leaf = True


class HashTree:
    """A hash tree over a fixed collection of canonical itemsets.

    Args:
        itemsets: Candidates to count (canonical tuples, non-empty).
        fanout: Hash buckets per interior node.
        leaf_capacity: Candidates per leaf before it splits.
    """

    def __init__(
        self,
        itemsets: Iterable[Itemset] = (),
        fanout: int = 8,
        leaf_capacity: int = 8,
    ):
        if fanout < 2 or leaf_capacity < 1:
            raise ValueError("fanout must be >= 2 and leaf capacity >= 1")
        self.fanout = fanout
        self.leaf_capacity = leaf_capacity
        self._root = _Node()
        self._size = 0
        self._seen: set[Itemset] = set()
        for itemset in itemsets:
            self.insert(itemset)

    def __len__(self) -> int:
        return self._size

    def _hash(self, item: int) -> int:
        return item % self.fanout

    def insert(self, itemset: Itemset) -> None:
        """Add one candidate (idempotent)."""
        if not itemset:
            raise ValueError("cannot count the empty itemset")
        if itemset in self._seen:
            return
        self._seen.add(itemset)
        self._size += 1
        self._insert(self._root, itemset, depth=0)

    def _insert(self, node: _Node, itemset: Itemset, depth: int) -> None:
        if node.is_leaf:
            node.candidates.append([itemset, 0])
            # Split when over capacity and there are items left to hash.
            if len(node.candidates) > self.leaf_capacity and depth < len(
                min((c[0] for c in node.candidates), key=len)
            ):
                entries = node.candidates
                node.candidates = []
                node.is_leaf = False
                for entry in entries:
                    self._insert_entry(node, entry, depth)
            return
        self._insert_entry(node, [itemset, 0], depth)

    def _insert_entry(self, node: _Node, entry: list, depth: int) -> None:
        itemset = entry[0]
        if depth >= len(itemset):
            # Cannot hash further; keep on this interior node's overflow
            # leaf (bucket -1).
            overflow = node.buckets.setdefault(-1, _Node())
            overflow.candidates.append(entry)
            return
        bucket = self._hash(itemset[depth])
        child = node.buckets.get(bucket)
        if child is None:
            child = _Node()
            node.buckets[bucket] = child
        if child.is_leaf:
            child.candidates.append(entry)
            if len(child.candidates) > self.leaf_capacity:
                shortest = min(len(c[0]) for c in child.candidates)
                if depth + 1 < shortest:
                    entries = child.candidates
                    child.candidates = []
                    child.is_leaf = False
                    for moved in entries:
                        self._insert_entry(child, moved, depth + 1)
        else:
            self._insert_entry(child, entry, depth + 1)

    # ------------------------------------------------------------------
    # Counting
    # ------------------------------------------------------------------

    def count_transaction(self, transaction: Transaction) -> None:
        """Increment every stored candidate contained in the transaction."""
        self._descend(self._root, transaction, start=0)

    def _descend(self, node: _Node, transaction: Transaction, start: int) -> None:
        if node.is_leaf:
            for entry in node.candidates:
                if contains(transaction, entry[0]):
                    entry[1] += 1
            return
        overflow = node.buckets.get(-1)
        if overflow is not None:
            for entry in overflow.candidates:
                if contains(transaction, entry[0]):
                    entry[1] += 1
        visited: set[int] = set()
        for position in range(start, len(transaction)):
            bucket = self._hash(transaction[position])
            if bucket in visited:
                continue
            visited.add(bucket)
            child = node.buckets.get(bucket)
            if child is not None:
                self._descend(child, transaction, position + 1)

    def count_dataset(self, transactions: Iterable[Transaction]) -> None:
        """Count every candidate against a stream of transactions."""
        for transaction in transactions:
            self.count_transaction(transaction)

    def counts(self) -> dict[Itemset, int]:
        """The accumulated count of every stored candidate."""
        result: dict[Itemset, int] = {}
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for itemset, count in node.candidates:
                    result[itemset] = count
            else:
                stack.extend(node.buckets.values())
        return result


def count_supports_hash(
    itemsets: Collection[Itemset], transactions: Iterable[Transaction]
) -> dict[Itemset, int]:
    """One-shot hash-tree counting (PrefixTree-compatible helper)."""
    if not itemsets:
        return {}
    tree = HashTree(itemsets)
    tree.count_dataset(transactions)
    return tree.counts()
