"""Calendric association rules (Ramaswamy et al., VLDB 1998) — §6.

The related-work system DEMON positions itself against: RMS98 segment a
*static* database into time units and discover the association rules
that *belong to a calendar* — rules meeting the minimum support and
confidence **on every segment** the calendar selects.  DEMON §6 draws
the contrast explicitly: RMS98 mine one rule set per time unit over a
static database, DEMON maintains a single combined model as the
database evolves.

This module implements the RMS98 side so the contrast is executable:

* a :class:`Calendar` is a named set of block identifiers (possibly
  overlapping with other calendars — RMS98 allow that);
* :func:`calendric_rules` mines each selected block independently and
  intersects the per-block rule sets, keeping the rules that hold
  everywhere (reporting their *weakest* support/confidence across the
  calendar, the natural belt measure);
* :func:`belongs_to_calendar` tests a single rule the same way.

The per-block models are mined with the library's own Apriori, and the
per-block rule sets with :mod:`repro.itemsets.rules` — no new mining
machinery, just the RMS98 combination semantics.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.blocks import Block
from repro.itemsets.apriori import mine_blocks
from repro.itemsets.itemset import Itemset
from repro.itemsets.model import FrequentItemsetModel
from repro.itemsets.rules import AssociationRule, generate_rules


@dataclass(frozen=True)
class Calendar:
    """A named selection of block identifiers (RMS98's calendar).

    Attributes:
        name: Human-readable label ("every Monday", "first of month").
        block_ids: The time units (blocks) the calendar selects.
    """

    name: str
    block_ids: frozenset[int]

    @classmethod
    def from_ids(cls, name: str, ids: Iterable[int]) -> "Calendar":
        return cls(name=name, block_ids=frozenset(ids))

    @classmethod
    def from_predicate(
        cls, name: str, blocks: Sequence[Block], predicate
    ) -> "Calendar":
        """Build a calendar by filtering blocks with a predicate."""
        return cls(
            name=name,
            block_ids=frozenset(
                b.block_id for b in blocks if predicate(b)
            ),
        )

    def __len__(self) -> int:
        return len(self.block_ids)


@dataclass(frozen=True)
class CalendricRule:
    """A rule that belongs to a calendar, with its weakest measures.

    Attributes:
        antecedent: Rule body.
        consequent: Rule head.
        calendar: The calendar the rule belongs to.
        min_support: The smallest per-segment support across segments.
        min_confidence: The smallest per-segment confidence.
    """

    antecedent: Itemset
    consequent: Itemset
    calendar: str
    min_support: float
    min_confidence: float

    def __str__(self) -> str:
        return (
            f"{set(self.antecedent)} => {set(self.consequent)} on "
            f"'{self.calendar}' (sup>={self.min_support:.3f}, "
            f"conf>={self.min_confidence:.3f})"
        )


class SegmentModelCache:
    """Per-block models and rule sets, mined once per block.

    RMS98 evaluate many (possibly overlapping) calendars over the same
    segments; caching the per-segment work makes that affordable.
    """

    def __init__(self, minsup: float, min_confidence: float):
        if not 0 < minsup < 1:
            raise ValueError(f"minimum support must be in (0, 1), got {minsup}")
        if not 0 < min_confidence <= 1:
            raise ValueError(
                f"minimum confidence must be in (0, 1], got {min_confidence}"
            )
        self.minsup = minsup
        self.min_confidence = min_confidence
        self._models: dict[int, FrequentItemsetModel] = {}
        self._rules: dict[int, dict[tuple, AssociationRule]] = {}

    def model_for(self, block: Block) -> FrequentItemsetModel:
        if block.block_id not in self._models:
            result = mine_blocks([block], self.minsup)
            self._models[block.block_id] = FrequentItemsetModel.from_mining_result(
                result, [block.block_id]
            )
        return self._models[block.block_id]

    def rules_for(self, block: Block) -> Mapping[tuple, AssociationRule]:
        if block.block_id not in self._rules:
            rules = generate_rules(
                self.model_for(block), min_confidence=self.min_confidence
            )
            self._rules[block.block_id] = {
                (r.antecedent, r.consequent): r for r in rules
            }
        return self._rules[block.block_id]


def calendric_rules(
    blocks: Sequence[Block],
    calendar: Calendar,
    minsup: float = 0.01,
    min_confidence: float = 0.5,
    cache: SegmentModelCache | None = None,
) -> list[CalendricRule]:
    """All rules that belong to ``calendar`` (RMS98 semantics).

    A rule belongs iff it meets ``minsup`` and ``min_confidence`` on
    *every* block the calendar selects.

    Args:
        blocks: The segmented database (block ids are 1-based).
        calendar: Which segments the rules must hold on.
        minsup: Per-segment minimum support.
        min_confidence: Per-segment minimum confidence.
        cache: Optional shared per-segment cache (reused across
            calendars).

    Returns:
        Rules sorted by descending weakest confidence.
    """
    selected = [b for b in blocks if b.block_id in calendar.block_ids]
    if not selected:
        return []
    cache = cache if cache is not None else SegmentModelCache(
        minsup, min_confidence
    )
    per_segment = [cache.rules_for(block) for block in selected]
    shared_keys = set(per_segment[0])
    for segment in per_segment[1:]:
        shared_keys &= set(segment)
        if not shared_keys:
            return []
    results = []
    for key in shared_keys:
        supports = [segment[key].support for segment in per_segment]
        confidences = [segment[key].confidence for segment in per_segment]
        results.append(
            CalendricRule(
                antecedent=key[0],
                consequent=key[1],
                calendar=calendar.name,
                min_support=min(supports),
                min_confidence=min(confidences),
            )
        )
    results.sort(key=lambda r: (-r.min_confidence, -r.min_support,
                                r.antecedent, r.consequent))
    return results


def belongs_to_calendar(
    rule_antecedent: Itemset,
    rule_consequent: Itemset,
    blocks: Sequence[Block],
    calendar: Calendar,
    minsup: float = 0.01,
    min_confidence: float = 0.5,
    cache: SegmentModelCache | None = None,
) -> bool:
    """Whether one specific rule holds on every calendar segment."""
    cache = cache if cache is not None else SegmentModelCache(
        minsup, min_confidence
    )
    key = (tuple(rule_antecedent), tuple(rule_consequent))
    for block in blocks:
        if block.block_id not in calendar.block_ids:
            continue
        if key not in cache.rules_for(block):
            return False
    return True
