"""The BORDERS incremental frequent-itemset maintainer (§3.1.1).

BORDERS (Feldman et al. 1997; Thomas et al. 1997) keeps the set of
frequent itemsets ``L`` *and* the negative border ``NB⁻`` with exact
counts.  When a block arrives it runs two phases:

* **Detection** — scan just the new block once to update the counts of
  every tracked itemset, then check which border itemsets crossed the
  threshold (and which frequent itemsets fell below it).  If no border
  itemset became frequent, the model is already correct.
* **Update** — promote the newly frequent border itemsets into ``L``,
  generate fresh candidates by the prefix join, and count them over the
  *entire* selected history; iterate until no new itemset is frequent.

The update phase's counting step is pluggable — PT-Scan (full scan, as
in the original BORDERS), ECUT, or ECUT+ — which is precisely the
comparison in the paper's Figures 2 and 4–7.

The maintainer implements :class:`DeletableModelMaintainer`, so it both
instantiates GEMM and supports the direct add+delete alternative
``A^u_M`` of §3.2.4.  It also implements the threshold-change protocol
of §3.1.1 (trivial filtering for ``κ' > κ``; BORDERS-with-ECUT
expansion for ``κ' < κ``).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.contracts import maintainer_contract, pure_unless_cloned
from repro.core.blocks import Block
from repro.core.maintainer import DeletableModelMaintainer
from repro.itemsets.apriori import apriori
from repro.itemsets.border import is_on_border
from repro.itemsets.counting import (
    ECUTCounter,
    ECUTPlusCounter,
    PTScanCounter,
    SupportCounter,
)
from repro.itemsets.itemset import (
    Itemset,
    Transaction,
    generate_candidates,
    proper_subsets,
)
from repro.itemsets.materialize import PairTidListStore
from repro.itemsets.model import FrequentItemsetModel
from repro.itemsets.prefix_tree import PrefixTree
from repro.itemsets.tidlist import TidListStore
from repro.storage.blockstore import BlockStore, transaction_nbytes
from repro.storage.iostats import IOStatsRegistry
from repro.storage.telemetry import DiagnosticsLog, Telemetry


@dataclass
class MaintenanceStats:
    """Per-phase accounting for one maintenance step (figs. 4–7).

    Attributes:
        detection_seconds: Time to scan the new block and re-threshold.
        update_seconds: Time spent counting and promoting candidates.
        candidates_counted: ``|S|`` — new candidates counted over the
            full selected history during the update phase.
        promotions: Border itemsets that became frequent.
        demotions: Frequent itemsets that fell below the threshold.
        update_rounds: Iterations of the candidate-generation loop.
    """

    detection_seconds: float = 0.0
    update_seconds: float = 0.0
    candidates_counted: int = 0
    promotions: int = 0
    demotions: int = 0
    update_rounds: int = 0

    @property
    def total_seconds(self) -> float:
        return self.detection_seconds + self.update_seconds


@dataclass
class ItemsetMiningContext:
    """Shared storage backing one evolving transactional database.

    GEMM maintains many models over overlapping block subsets; they all
    share one context so each block's data and TID-lists are stored and
    built exactly once (the paper's per-block TID-list partitioning).
    """

    registry: IOStatsRegistry = field(default_factory=IOStatsRegistry)
    block_store: BlockStore[Transaction] = None  # type: ignore[assignment]
    tidlists: TidListStore = None  # type: ignore[assignment]
    pairs: PairTidListStore = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.block_store is None:
            self.block_store = BlockStore(
                sizer=transaction_nbytes, registry=self.registry
            )
        if self.tidlists is None:
            self.tidlists = TidListStore(registry=self.registry)
        if self.pairs is None:
            self.pairs = PairTidListStore(registry=self.registry)


def make_counter(kind: str, context: ItemsetMiningContext) -> SupportCounter:
    """Build one of the three update-phase counters by name."""
    normalized = kind.lower().replace("-", "").replace("_", "")
    if normalized in ("ptscan", "scan"):
        return PTScanCounter(context.block_store)
    if normalized == "ecut":
        return ECUTCounter(context.tidlists)
    if normalized in ("ecutplus", "ecut+"):
        return ECUTPlusCounter(context.tidlists, context.pairs)
    raise ValueError(f"unknown counter kind {kind!r}; use ptscan, ecut, or ecut+")


@maintainer_contract
class BordersMaintainer(
    DeletableModelMaintainer[FrequentItemsetModel, Transaction]
):
    """BORDERS with a pluggable update-phase support counter.

    Args:
        minsup: Minimum support threshold ``κ``.
        context: Shared storage; a private one is created if omitted.
        counter: Counter kind (``"ptscan"``, ``"ecut"``, ``"ecut+"``) or
            a ready :class:`SupportCounter` instance.
        pair_budget_bytes: ECUT+ per-block space budget ``M_i`` for
            materialized 2-itemset TID-lists (``None`` = unbounded).
    """

    def __init__(
        self,
        minsup: float,
        context: ItemsetMiningContext | None = None,
        counter: str | SupportCounter = "ecut",
        pair_budget_bytes: int | None = None,
    ):
        if not 0 < minsup < 1:
            raise ValueError(f"minimum support must be in (0, 1), got {minsup}")
        self.minsup = minsup
        self.context = context if context is not None else ItemsetMiningContext()
        if isinstance(counter, SupportCounter):
            self.counter = counter
        else:
            self.counter = make_counter(counter, self.context)
        self.pair_budget_bytes = pair_budget_bytes
        #: Observability side channel (DML012: pure methods report
        #: their costs here instead of storing run state on ``self``).
        self.diagnostics = DiagnosticsLog()
        #: Instrumentation spine; a session rebinds this onto its own.
        self.telemetry = Telemetry()

    @property
    def last_stats(self) -> MaintenanceStats:
        """Stats of the most recent maintenance operation."""
        return self.diagnostics.latest("borders.maintenance", MaintenanceStats())

    # ------------------------------------------------------------------
    # Block registration (storage + per-block TID-lists, built once)
    # ------------------------------------------------------------------

    def register_block(
        self, block: Block[Transaction], model: FrequentItemsetModel | None = None
    ) -> None:
        """Store a block and build its TID-lists, idempotently.

        When the counter is ECUT+ and a model is supplied, the frequent
        2-itemsets of that model are materialized for the block under
        the configured space budget (§3.1.1's heuristic).
        """
        if block.block_id not in self.context.block_store:
            self.context.block_store.append_block(block)
        if not self.context.tidlists.has_block(block.block_id):
            self.context.tidlists.materialize_block(block)
        if (
            isinstance(self.counter, ECUTPlusCounter)
            and model is not None
            and not self.context.pairs.has_block(block.block_id)
        ):
            self.materialize_pairs_for_block(block, model)

    def materialize_pairs_for_block(
        self, block: Block[Transaction], model: FrequentItemsetModel
    ) -> list[tuple[int, int]]:
        """Materialize the model's frequent 2-itemsets for one block."""
        pairs = [p for p in model.frequent_of_size(2)]
        base = self.context.tidlists.base_tid(block.block_id)
        return self.context.pairs.materialize_block(
            block,
            pairs,
            overall_supports=model.frequent,
            budget_bytes=self.pair_budget_bytes,
            base_tid=base,
        )

    # ------------------------------------------------------------------
    # Worker-pool sharding support (repro.parallel)
    # ------------------------------------------------------------------

    def worker_payload(self) -> dict[str, Any] | None:
        """A small spec from which a worker can rebuild this maintainer.

        Only the stock counters are describable by name; a custom
        :class:`SupportCounter` instance (or subclass) may carry state a
        spec cannot reproduce, so ``None`` tells the pool integration to
        fall back to shipping the whole pickled maintainer.
        """
        counter_type = type(self.counter)
        if counter_type is ECUTCounter:
            kind = "ecut"
        elif counter_type is ECUTPlusCounter:
            kind = "ecut+"
        elif counter_type is PTScanCounter:
            kind = "ptscan"
        else:
            return None
        return {
            "maintainer": "borders",
            "minsup": self.minsup,
            "counter": kind,
            "pair_budget_bytes": self.pair_budget_bytes,
        }

    def worker_block_refs(self, block_ids: Sequence[int]) -> list[Any] | None:
        """Zero-copy refs for the given history blocks, if available.

        ``None`` when any block's source handle is gone (checkpoint
        restore rebuilds TID-lists but not handles), which sends the
        caller down the serial path.
        """
        from repro.parallel.shards import block_ref

        refs: list[Any] = []
        for block_id in block_ids:
            block = self.context.tidlists.source_block(block_id)
            if block is None:
                return None
            refs.append(block_ref(block))
        return refs

    # ------------------------------------------------------------------
    # IncrementalModelMaintainer interface
    # ------------------------------------------------------------------

    def empty_model(self) -> FrequentItemsetModel:
        return FrequentItemsetModel(minsup=self.minsup)

    def build(self, blocks) -> FrequentItemsetModel:
        """``A_M(D, φ)``: Apriori over the given blocks."""
        block_list = list(blocks)
        if not block_list:
            return self.empty_model()
        for block in block_list:
            self.register_block(block)
        block_ids = [b.block_id for b in block_list]

        def factory():
            return self.context.block_store.scan_many(block_ids)

        result = apriori(factory, self.minsup)
        model = FrequentItemsetModel.from_mining_result(result, block_ids)
        # Item universe must cover every observed item, not just those
        # with tracked singletons (apriori tracks all, so this is a
        # belt-and-braces union).
        for block in block_list:
            for transaction in block.iter_records():
                model.items.update(transaction)
        if isinstance(self.counter, ECUTPlusCounter):
            for block in block_list:
                if not self.context.pairs.has_block(block.block_id):
                    self.materialize_pairs_for_block(block, model)
        return model

    @pure_unless_cloned
    def add_block(
        self, model: FrequentItemsetModel, block: Block[Transaction]
    ) -> FrequentItemsetModel:
        """``A_M(m, D_j)``: detection + update phases for an added block."""
        self.register_block(block, model=model)
        stats = MaintenanceStats()
        span = self.telemetry.phase("borders.detection").start()

        # --- Detection phase: one scan of the new block ----------------
        tracked = model.tracked()
        tree = PrefixTree(tracked.keys()) if tracked else None
        new_item_counts: dict[int, int] = {}
        for transaction in self.context.block_store.scan(block.block_id):
            if tree is not None:
                tree.count_transaction(transaction)
            for item in transaction:
                if item not in model.items:
                    new_item_counts[item] = new_item_counts.get(item, 0) + 1
        if tree is not None:
            for itemset, delta in tree.counts().items():
                if itemset in model.frequent:
                    model.frequent[itemset] += delta
                else:
                    model.border[itemset] += delta
        model.n_transactions += len(block)
        model.selected_block_ids.append(block.block_id)
        model.selected_block_ids.sort()

        # Items never seen in a selected block before: their count over
        # prior selected blocks is zero, so the block-local count is the
        # global count.  Newly *frequent* items seed the update phase's
        # candidate generation (they never sat in the border).
        threshold = model.min_count
        seeds: dict[Itemset, int] = {}
        for item, count in new_item_counts.items():
            model.items.add(item)
            singleton: Itemset = (item,)
            if count >= threshold:
                model.frequent[singleton] = count
                seeds[singleton] = count
            else:
                model.border[singleton] = count

        stats.detection_seconds = span.stop()
        self._rebalance(model, stats, seeds=seeds)
        self.diagnostics.record("borders.maintenance", stats)
        return model

    @pure_unless_cloned
    def delete_block(
        self, model: FrequentItemsetModel, block: Block[Transaction]
    ) -> FrequentItemsetModel:
        """Reverse a previously added block (§3.2.4).

        The block is scanned once to decrement tracked counts; the same
        detection/update machinery then restores the L/NB⁻ invariants
        (deletions can both demote and promote itemsets, because the
        denominator shrinks too).
        """
        if block.block_id not in model.selected_block_ids:
            raise ValueError(
                f"block {block.block_id} is not part of this model's selection"
            )
        stats = MaintenanceStats()
        span = self.telemetry.phase("borders.detection").start()
        tracked = model.tracked()
        if tracked:
            tree = PrefixTree(tracked.keys())
            tree.count_dataset(self.context.block_store.scan(block.block_id))
            for itemset, delta in tree.counts().items():
                if itemset in model.frequent:
                    model.frequent[itemset] -= delta
                else:
                    model.border[itemset] -= delta
        model.n_transactions -= len(block)
        model.selected_block_ids.remove(block.block_id)

        # Drop items that vanished entirely from the selection.
        for itemset in list(model.border):
            if len(itemset) == 1 and model.border[itemset] <= 0:
                del model.border[itemset]
                model.items.discard(itemset[0])

        stats.detection_seconds = span.stop()
        self._rebalance(model, stats)
        self.diagnostics.record("borders.maintenance", stats)
        return model

    def clone(self, model: FrequentItemsetModel) -> FrequentItemsetModel:
        return model.copy()

    # ------------------------------------------------------------------
    # Threshold changes (§3.1.1)
    # ------------------------------------------------------------------

    def lower_threshold(
        self, model: FrequentItemsetModel, new_minsup: float
    ) -> FrequentItemsetModel:
        """Re-derive the model at ``κ' < κ`` using the update machinery.

        Border counts are exact, so lowering the threshold promotes the
        border itemsets that now qualify and expands outward with the
        configured counter — "BORDERS augmented with ECUT/ECUT+".
        """
        if new_minsup >= model.minsup:
            raise ValueError(
                "lower_threshold requires the new threshold to be smaller; "
                "use FrequentItemsetModel.raise_threshold instead"
            )
        if not 0 < new_minsup < 1:
            raise ValueError(f"minimum support must be in (0, 1), got {new_minsup}")
        model.minsup = new_minsup
        stats = MaintenanceStats()
        self._rebalance(model, stats)
        self.diagnostics.record("borders.maintenance", stats)
        return model

    # ------------------------------------------------------------------
    # Shared demote/promote/expand machinery
    # ------------------------------------------------------------------

    def _rebalance(
        self,
        model: FrequentItemsetModel,
        stats: MaintenanceStats,
        seeds: dict[Itemset, int] | None = None,
    ) -> None:
        """Restore the L/NB⁻ invariants after counts or κ changed.

        ``seeds`` are itemsets the caller already placed in ``L`` that
        were not border members (newly observed frequent items); they
        participate in candidate generation like border promotions do.
        """
        span = self.telemetry.phase("borders.update").start()
        threshold = model.min_count

        # Demote frequent itemsets that fell below the threshold.  A
        # demoted itemset joins the border only while all its proper
        # subsets stay frequent; border members whose subsets got
        # demoted are deleted (paper footnote 6).
        demoted = {
            itemset: count
            for itemset, count in model.frequent.items()
            if count < threshold
        }
        for itemset in demoted:
            del model.frequent[itemset]
        stats.demotions += len(demoted)
        if demoted:
            frequent_set = set(model.frequent)
            for itemset, count in demoted.items():
                if is_on_border(itemset, frequent_set):
                    model.border[itemset] = count
            for itemset in list(model.border):
                if not is_on_border(itemset, frequent_set):
                    del model.border[itemset]

        # Promote border itemsets that crossed the threshold, then
        # expand: generate fresh candidates around everything that newly
        # became frequent, count them over the whole selected history
        # with the pluggable counter, and repeat to closure.
        promoted = {
            itemset: count
            for itemset, count in model.border.items()
            if count >= threshold
        }
        newly_frequent: set[Itemset] = set(seeds or ())
        while promoted or newly_frequent:
            stats.promotions += len(promoted)
            for itemset, count in promoted.items():
                # First round promotes border members; later rounds
                # promote freshly counted candidates that never sat in
                # the border, hence pop with default.
                model.border.pop(itemset, None)
                model.frequent[itemset] = count
            newly_frequent |= set(promoted)

            stats.update_rounds += 1
            candidates = self._new_candidates(newly_frequent, model)
            if not candidates:
                break
            with self.telemetry.phase(self._counting_phase()):
                counts = self.counter.count_batch(
                    candidates, model.selected_block_ids
                )
            stats.candidates_counted += len(candidates)
            promoted = {}
            newly_frequent = set()
            for candidate, count in counts.items():
                if count >= threshold:
                    promoted[candidate] = count
                else:
                    model.border[candidate] = count
        stats.update_seconds = span.stop()
        self.telemetry.increment("borders.promotions", stats.promotions)
        self.telemetry.increment("borders.demotions", stats.demotions)
        self.telemetry.increment(
            "borders.candidates_counted", stats.candidates_counted
        )

    def _counting_phase(self) -> str:
        """Telemetry phase name of the configured support counter."""
        return "counting." + self.counter.name.lower().replace("-", "")

    def _new_candidates(
        self, newly_frequent: set[Itemset], model: FrequentItemsetModel
    ) -> set[Itemset]:
        """Fresh, untracked candidates with all subsets frequent.

        A candidate not already tracked must have at least one immediate
        subset that *just* became frequent (otherwise it would have been
        generated before), so it suffices to extend each newly frequent
        itemset by one frequent item and prune.  When the promotion set
        is huge this targeted pass costs more than regenerating from the
        whole of ``L``, so fall back to the global prefix join then.
        """
        frequent_set = set(model.frequent)
        tracked = frequent_set | set(model.border)
        frequent_items = [x[0] for x in frequent_set if len(x) == 1]
        if len(newly_frequent) * len(frequent_items) > 4 * len(frequent_set) + 10_000:
            return generate_candidates(frequent_set) - tracked
        result: set[Itemset] = set()
        for base in newly_frequent:
            base_set = set(base)
            for item in frequent_items:
                if item in base_set:
                    continue
                candidate = tuple(sorted(base + (item,)))
                if candidate in tracked or candidate in result:
                    continue
                if all(s in frequent_set for s in proper_subsets(candidate)):
                    result.add(candidate)
        return result
