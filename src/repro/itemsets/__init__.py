"""Frequent-itemset mining and incremental maintenance.

Implements the full itemset stack of the paper: Apriori with
negative-border tracking, the BORDERS incremental maintainer with
pluggable support counters (PT-Scan, ECUT, ECUT+), per-block TID-lists,
the ECUT+ 2-itemset materialization heuristic, and the FUP baseline.
"""

from repro.itemsets.apriori import MiningResult, apriori, mine_blocks
from repro.itemsets.border import (
    check_border_invariant,
    is_on_border,
    negative_border,
)
from repro.itemsets.borders import (
    BordersMaintainer,
    ItemsetMiningContext,
    MaintenanceStats,
    make_counter,
)
from repro.itemsets.calendric import (
    Calendar,
    CalendricRule,
    SegmentModelCache,
    belongs_to_calendar,
    calendric_rules,
)
from repro.itemsets.counting import (
    ECUTCounter,
    ECUTPlusCounter,
    PTScanCounter,
    SupportCounter,
)
from repro.itemsets.fup import FUPMaintainer, FUPStats
from repro.itemsets.hash_tree import HashTree, count_supports_hash
from repro.itemsets.kernels import (
    BitmapTidList,
    force_kernel,
    intersect_arrays,
    intersect_gallop,
    intersect_merge,
    intersect_pair,
)
from repro.itemsets.itemset import (
    Itemset,
    Transaction,
    contains,
    generate_candidates,
    make_itemset,
    minimum_count,
    normalize_transaction,
    prefix_join,
    proper_subsets,
    support_fraction,
)
from repro.itemsets.materialize import PairTidListStore, plan_cover
from repro.itemsets.model import FrequentItemsetModel
from repro.itemsets.prefix_tree import PrefixTree, count_supports
from repro.itemsets.rules import (
    AssociationRule,
    RuleDiff,
    diff_rules,
    generate_rules,
)
from repro.itemsets.tidlist import TidListStore, intersect_sorted

__all__ = [
    "Itemset",
    "Transaction",
    "make_itemset",
    "normalize_transaction",
    "contains",
    "proper_subsets",
    "prefix_join",
    "generate_candidates",
    "support_fraction",
    "minimum_count",
    "PrefixTree",
    "count_supports",
    "HashTree",
    "count_supports_hash",
    "MiningResult",
    "apriori",
    "mine_blocks",
    "negative_border",
    "is_on_border",
    "check_border_invariant",
    "TidListStore",
    "intersect_sorted",
    "BitmapTidList",
    "force_kernel",
    "intersect_arrays",
    "intersect_gallop",
    "intersect_merge",
    "intersect_pair",
    "PairTidListStore",
    "plan_cover",
    "SupportCounter",
    "PTScanCounter",
    "ECUTCounter",
    "ECUTPlusCounter",
    "FrequentItemsetModel",
    "BordersMaintainer",
    "ItemsetMiningContext",
    "MaintenanceStats",
    "make_counter",
    "FUPMaintainer",
    "FUPStats",
    "AssociationRule",
    "RuleDiff",
    "generate_rules",
    "diff_rules",
    "Calendar",
    "CalendricRule",
    "SegmentModelCache",
    "calendric_rules",
    "belongs_to_calendar",
]
