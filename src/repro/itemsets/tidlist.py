"""Per-block TID-lists and merge-intersection support counting (§3.1.1).

ECUT counts the support of an itemset ``X = {i1, ..., ik}`` by
intersecting the TID-lists ``θ(i1), ..., θ(ik)``; the cardinality of
the intersection is the support.  Two properties of systematic block
evolution let TID-lists be partitioned one-per-block and built exactly
once, when the block arrives:

* **additivity** — the support of ``X`` on ``D[1, t]`` is the sum of
  its per-block supports;
* **0/1 property** — a BSS selects a block completely or not at all, so
  a per-block list never needs to be split.

Transaction identifiers are global and increase in arrival order, so
within a block the per-item lists are built by a single scan appending
each transaction's tid to the list of every item it contains.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.blocks import Block
from repro.itemsets.itemset import Itemset, Transaction
from repro.storage.iostats import IOStats, IOStatsRegistry

#: Logical bytes per stored transaction identifier.
TID_BYTES = 4

#: dtype used for TID arrays.
TID_DTYPE = np.int64


def intersect_sorted(lists: Sequence[np.ndarray]) -> np.ndarray:
    """Intersect sorted, duplicate-free tid arrays (sort-merge join).

    Processes the arrays smallest-first so the running intersection only
    shrinks; returns an empty array as soon as it empties.
    """
    if not lists:
        return np.empty(0, dtype=TID_DTYPE)
    ordered = sorted(lists, key=len)
    result = ordered[0]
    for other in ordered[1:]:
        if len(result) == 0:
            break
        result = np.intersect1d(result, other, assume_unique=True)
    return result


class TidListStore:
    """Disk-simulated store of per-block, per-item TID-lists.

    Every fetch is charged to an I/O counter at :data:`TID_BYTES` per
    tid, so benchmarks can verify the paper's claim that ECUT touches
    one to two orders of magnitude fewer bytes than a full scan.

    Args:
        registry: I/O registry to charge fetches to; private if omitted.
        counter_name: Counter name within the registry.
    """

    def __init__(
        self,
        registry: IOStatsRegistry | None = None,
        counter_name: str = "tidlist_fetch",
    ):
        self.registry = registry if registry is not None else IOStatsRegistry()
        self._stats = self.registry.get(counter_name)
        self._lists: dict[int, dict[int, np.ndarray]] = {}
        self._block_sizes: dict[int, int] = {}
        self._base_tids: dict[int, int] = {}
        self._next_tid = 0

    @property
    def stats(self) -> IOStats:
        """The counter fetches are charged to."""
        return self._stats

    def materialize_block(self, block: Block[Transaction]) -> None:
        """Build the TID-lists of all items for one arriving block.

        Transaction identifiers continue the global sequence.  The block
        is scanned once; the scan itself is not charged here (the caller
        typically scans the block anyway to update the model and charges
        that scan to the block store).
        """
        if block.block_id in self._lists:
            raise ValueError(f"TID-lists for block {block.block_id} already built")
        buffers: dict[int, list[int]] = {}
        base = self._next_tid
        tid = base
        for transaction in block.tuples:
            for item in transaction:
                buffers.setdefault(item, []).append(tid)
            tid += 1
        self._next_tid = tid
        self._lists[block.block_id] = {
            item: np.asarray(tids, dtype=TID_DTYPE) for item, tids in buffers.items()
        }
        self._block_sizes[block.block_id] = len(block.tuples)
        self._base_tids[block.block_id] = base

    def has_block(self, block_id: int) -> bool:
        """Whether TID-lists for this block have been materialized."""
        return block_id in self._lists

    def block_size(self, block_id: int) -> int:
        """Number of transactions in a materialized block."""
        return self._block_sizes[block_id]

    def base_tid(self, block_id: int) -> int:
        """Global tid of a block's first transaction."""
        return self._base_tids[block_id]

    def drop_block(self, block_id: int) -> None:
        """Discard a block's lists (when it can never be selected again)."""
        self._lists.pop(block_id, None)
        self._block_sizes.pop(block_id, None)
        self._base_tids.pop(block_id, None)

    def fetch(self, block_id: int, item: int) -> np.ndarray:
        """Fetch one item's TID-list for one block, charging the read."""
        block_lists = self._lists.get(block_id)
        if block_lists is None:
            raise KeyError(f"no TID-lists materialized for block {block_id}")
        tids = block_lists.get(item)
        if tids is None:
            tids = np.empty(0, dtype=TID_DTYPE)
        self._stats.record_read(TID_BYTES * len(tids))
        return tids

    def item_count(self, block_id: int, item: int) -> int:
        """Length of one per-block list without charging a fetch.

        List lengths are catalog metadata (they equal the item's support
        in the block), available without reading the list body.
        """
        block_lists = self._lists.get(block_id)
        if block_lists is None:
            raise KeyError(f"no TID-lists materialized for block {block_id}")
        tids = block_lists.get(item)
        return 0 if tids is None else len(tids)

    def nbytes(self, block_id: int) -> int:
        """Logical size of one block's item TID-lists."""
        block_lists = self._lists.get(block_id)
        if block_lists is None:
            raise KeyError(f"no TID-lists materialized for block {block_id}")
        return TID_BYTES * sum(len(t) for t in block_lists.values())

    def total_nbytes(self) -> int:
        """Logical size of all materialized item TID-lists."""
        return sum(self.nbytes(block_id) for block_id in self._lists)

    def count_itemset_in_block(self, block_id: int, itemset: Itemset) -> int:
        """Support count of ``itemset`` within one block via intersection."""
        if not itemset:
            return self._block_sizes.get(block_id, 0)
        # Fetch rarest-first and intersect progressively: the running
        # intersection only shrinks, and an empty one stops the fetches.
        by_rarity = sorted(itemset, key=lambda item: self.item_count(block_id, item))
        running = self.fetch(block_id, by_rarity[0])
        for item in by_rarity[1:]:
            if len(running) == 0:
                return 0
            running = np.intersect1d(
                running, self.fetch(block_id, item), assume_unique=True
            )
        return int(len(running))

    def count_itemset(self, block_ids: Iterable[int], itemset: Itemset) -> int:
        """Support count of ``itemset`` over several blocks (additivity)."""
        return sum(self.count_itemset_in_block(b, itemset) for b in block_ids)
