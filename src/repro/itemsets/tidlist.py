"""Per-block TID-lists and merge-intersection support counting (§3.1.1).

ECUT counts the support of an itemset ``X = {i1, ..., ik}`` by
intersecting the TID-lists ``θ(i1), ..., θ(ik)``; the cardinality of
the intersection is the support.  Two properties of systematic block
evolution let TID-lists be partitioned one-per-block and built exactly
once, when the block arrives:

* **additivity** — the support of ``X`` on ``D[1, t]`` is the sum of
  its per-block supports;
* **0/1 property** — a BSS selects a block completely or not at all, so
  a per-block list never needs to be split.

Transaction identifiers are global and increase in arrival order, so
within a block the per-item lists are built by a single scan appending
each transaction's tid to the list of every item it contains.

Physically each per-block list is stored either as a sorted tid array
or — for items dense enough in a large enough block — as a packed
bitmap (see :mod:`repro.itemsets.kernels`); the store picks the
representation at :meth:`TidListStore.materialize_block` time and the
byte-metered fetches charge whichever representation is actually read.
Materialized arrays are frozen (``writeable = False``): fetches return
the store's physical arrays without copying, so a caller mutating a
fetched list would otherwise silently corrupt every later count.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from repro.core.blocks import Block
from repro.itemsets.itemset import Itemset, Transaction
from repro.itemsets.kernels import (
    TID_BYTES,
    TID_DTYPE,
    BITMAP_DENSITY,
    BITMAP_MIN_BLOCK,
    BitmapTidList,
    ChunkedTidList,
    DeltaVarintTidList,
    TidList,
    as_array,
    compress_list,
    intersect_many,
    intersect_pair,
    list_nbytes,
    pack_rows,
)
from repro.storage.iostats import IOStats, IOStatsRegistry

__all__ = [
    "TID_BYTES",
    "TID_DTYPE",
    "TidListStore",
    "intersect_sorted",
]


def intersect_sorted(lists: Sequence[np.ndarray]) -> np.ndarray:
    """Intersect sorted, duplicate-free tid arrays (adaptive kernels).

    Processes the arrays smallest-first so the running intersection only
    shrinks; returns an empty array as soon as it empties.  May return
    one of its inputs unchanged (e.g. a single-element ``lists``), so
    callers must not mutate the result — store-fetched arrays are
    read-only precisely to catch that.
    """
    return as_array(intersect_many(lists))


class TidListStore:
    """Disk-simulated store of per-block, per-item TID-lists.

    Every fetch is charged to an I/O counter at the list's physical
    size (:data:`TID_BYTES` per tid for arrays, eight bytes per word
    for dense bitmaps), so benchmarks can verify the paper's claim that
    ECUT touches one to two orders of magnitude fewer bytes than a full
    scan.

    Args:
        registry: I/O registry to charge fetches to; private if omitted.
        counter_name: Counter name within the registry.
    """

    def __init__(
        self,
        registry: IOStatsRegistry | None = None,
        counter_name: str = "tidlist_fetch",
    ):
        self.registry = registry if registry is not None else IOStatsRegistry()
        self._stats = self.registry.get(counter_name)
        self._lists: dict[int, dict[int, TidList]] = {}
        self._block_sizes: dict[int, int] = {}
        self._base_tids: dict[int, int] = {}
        self._catalogs: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._packed: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._sources: dict[int, Block[Transaction]] = {}
        self._compressed: set[int] = set()
        self._next_tid = 0

    @property
    def stats(self) -> IOStats:
        """The counter fetches are charged to."""
        return self._stats

    def materialize_block(self, block: Block[Transaction]) -> None:
        """Build the TID-lists of all items for one arriving block.

        Transaction identifiers continue the global sequence.  The block
        is scanned once; the scan itself is not charged here (the caller
        typically scans the block anyway to update the model and charges
        that scan to the block store).  Items holding at least
        :data:`~repro.itemsets.kernels.BITMAP_DENSITY` of a block of at
        least :data:`~repro.itemsets.kernels.BITMAP_MIN_BLOCK`
        transactions are packed into bitmaps; everything else stays a
        frozen sorted array.
        """
        if block.block_id in self._lists:
            raise ValueError(f"TID-lists for block {block.block_id} already built")
        buffers: dict[int, list[int]] = {}
        base = self._next_tid
        tid = base
        for chunk in block.iter_chunks():
            for transaction in chunk:
                for item in transaction:
                    buffers.setdefault(item, []).append(tid)
                tid += 1
        self._next_tid = tid
        size = block.num_records
        dense_cutoff = (
            BITMAP_DENSITY * size if size >= BITMAP_MIN_BLOCK else float("inf")
        )
        block_lists: dict[int, TidList] = {}
        for item, tids in buffers.items():
            array = np.asarray(tids, dtype=TID_DTYPE)
            array.flags.writeable = False
            if len(tids) >= dense_cutoff:
                block_lists[item] = BitmapTidList.from_array(array, base, size)
            else:
                block_lists[item] = array
        self._lists[block.block_id] = block_lists
        self._block_sizes[block.block_id] = size
        self._base_tids[block.block_id] = base
        self._sources[block.block_id] = block

    def has_block(self, block_id: int) -> bool:
        """Whether TID-lists for this block have been materialized."""
        return block_id in self._lists

    def block_size(self, block_id: int) -> int:
        """Number of transactions in a materialized block."""
        return self._block_sizes[block_id]

    def base_tid(self, block_id: int) -> int:
        """Global tid of a block's first transaction."""
        return self._base_tids[block_id]

    def drop_block(self, block_id: int) -> None:
        """Discard a block's lists (when it can never be selected again)."""
        self._lists.pop(block_id, None)
        self._block_sizes.pop(block_id, None)
        self._base_tids.pop(block_id, None)
        self._catalogs.pop(block_id, None)
        self._packed.pop(block_id, None)
        self._sources.pop(block_id, None)
        self._compressed.discard(block_id)

    # -- the cold tier (compressed lists for expired blocks) -----------

    def block_compressed(self, block_id: int) -> bool:
        """Whether this block's lists are in compressed representations."""
        return block_id in self._compressed

    def compressed_nbytes(self) -> int:
        """Physical bytes of all compressed blocks' lists."""
        return sum(self.nbytes(block_id) for block_id in self._compressed)

    def compress_block(self, block_id: int) -> int:
        """Swap one block's lists to compressed representations.

        Called by the session when the block expires from the most
        recent window: the lists stay selectable by window-independent
        BSSes, but cold — sorted arrays become segmented delta+varint
        blobs, dense bitmaps become roaring-style container sets, and
        counting proceeds in the compressed domain
        (:mod:`repro.itemsets.kernels`).  Fetch charges shrink to the
        compressed physical sizes.  Idempotent; returns the compressed
        bytes now holding the block (0 if unknown or already
        compressed).  The replacement mapping is built fully before the
        one-assignment swap, so a failure mid-compression leaves the
        store untouched (DML018).
        """
        if block_id in self._compressed or block_id not in self._lists:
            return 0
        base = self._base_tids[block_id]
        size = self._block_sizes[block_id]
        compressed = {
            item: compress_list(tids, base, size)
            for item, tids in self._block_lists(block_id).items()
        }
        self._lists[block_id] = compressed
        self._catalogs.pop(block_id, None)
        self._packed.pop(block_id, None)
        self._compressed.add(block_id)
        return sum(list_nbytes(tids) for tids in compressed.values())

    def _canonical_lists(self, block_id: int) -> dict[int, TidList]:
        """A compressed block's lists in their original dense forms.

        Compression maps arrays to varint lists and bitmaps to roaring
        sets, so the inverse is representation-exact: a
        compress/decompress cycle (or a checkpoint, which stores the
        canonical forms) reproduces the lists
        :meth:`materialize_block` built, byte for byte.
        """
        base = self._base_tids[block_id]
        size = self._block_sizes[block_id]
        canonical: dict[int, TidList] = {}
        for item, tids in self._block_lists(block_id).items():
            if isinstance(tids, ChunkedTidList):
                canonical[item] = BitmapTidList.from_array(
                    tids.to_array(), base, size
                )
            elif isinstance(tids, DeltaVarintTidList):
                array = tids.to_array()
                array.flags.writeable = False
                canonical[item] = array
            else:
                canonical[item] = tids
        return canonical

    def decompress_block(self, block_id: int) -> bool:
        """Restore one block's lists to their dense representations."""
        if block_id not in self._compressed:
            return False
        self._lists[block_id] = self._canonical_lists(block_id)
        self._catalogs.pop(block_id, None)
        self._packed.pop(block_id, None)
        self._compressed.discard(block_id)
        return True

    def source_block(self, block_id: int) -> Block[Transaction] | None:
        """The block handle this store materialized ``block_id`` from.

        The sharded counting path (:mod:`repro.parallel`) uses the
        handle to build a zero-copy ref for workers.  ``None`` when the
        block was never materialized here or the store was restored
        from a checkpoint (handles are execution state, not model
        state — see ``__getstate__`` — so a freshly restored session
        counts serially until new blocks arrive).
        """
        return self._sources.get(block_id)

    def __getstate__(self) -> dict[str, Any]:
        # Block handles are backend-bound execution state: pickling
        # them would materialize every block into the checkpoint (and
        # make its bytes depend on registration order of live handles).
        # The packed-row catalogs are lazy caches derived from
        # ``_lists`` — persisting them would make checkpoint bytes
        # depend on which process happened to count which block (the
        # sharded path builds them worker-side).  The TID-lists
        # themselves are self-contained and are what persists — in
        # their *canonical* dense forms: compression is a placement
        # decision, and checkpoint bytes must be identical regardless
        # of where (or how compactly) a block currently lives.  The
        # sorted id list records which blocks were cold so restore can
        # re-compress them deterministically.
        state = dict(self.__dict__)
        state["_sources"] = {}
        state["_catalogs"] = {}
        state["_packed"] = {}
        if self._compressed:
            lists = dict(self._lists)
            for block_id in self._compressed:
                lists[block_id] = self._canonical_lists(block_id)
            state["_lists"] = lists
        state["_compressed"] = sorted(self._compressed)
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        state.setdefault("_sources", {})
        state.setdefault("_catalogs", {})
        state.setdefault("_packed", {})
        cold_ids = state.pop("_compressed", ())
        self.__dict__.update(state)
        self._compressed = set()
        for block_id in cold_ids:
            self.compress_block(block_id)

    def _block_lists(self, block_id: int) -> dict[int, TidList]:
        block_lists = self._lists.get(block_id)
        if block_lists is None:
            raise KeyError(f"no TID-lists materialized for block {block_id}")
        return block_lists

    def lists_view(self, block_id: int) -> dict[int, TidList]:
        """Direct (read-only by convention) view of one block's lists.

        The batched counting engine resolves many lists per block and
        meters the reads itself in aggregate
        (:meth:`~repro.storage.iostats.IOStats.record_reads`); going
        through :meth:`fetch_list` per list would double the engine's
        Python overhead.  Callers must not mutate the mapping and must
        charge every list they take from it.
        """
        return self._block_lists(block_id)

    def fetch_list(self, block_id: int, item: int) -> TidList:
        """Fetch one list in its physical representation, charging it.

        The hot counting paths use this and intersect through
        :mod:`repro.itemsets.kernels`, so dense bitmaps are ANDed
        word-wise instead of being unpacked.
        """
        tids = self._block_lists(block_id).get(item)
        if tids is None:
            tids = np.empty(0, dtype=TID_DTYPE)
        self._stats.record_read(list_nbytes(tids))
        return tids

    def fetch(self, block_id: int, item: int) -> np.ndarray:
        """Fetch one item's TID-list as a sorted array, charging the read.

        The charge is the physical representation's size; bitmaps are
        unpacked for the caller after the (cheaper) bitmap fetch.  The
        returned array is read-only when it aliases store memory.
        """
        return as_array(self.fetch_list(block_id, item))

    def item_count(self, block_id: int, item: int) -> int:
        """Length of one per-block list without charging a fetch.

        List lengths are catalog metadata (they equal the item's support
        in the block), available without reading the list body.
        """
        tids = self._block_lists(block_id).get(item)
        return 0 if tids is None else len(tids)

    def item_counts(self, block_id: int, items: Iterable[int]) -> dict[int, int]:
        """Catalog lengths for several items at once (not charged)."""
        block_lists = self._block_lists(block_id)
        result: dict[int, int] = {}
        for item in items:
            tids = block_lists.get(item)
            result[item] = 0 if tids is None else len(tids)
        return result

    def _catalog(self, block_id: int) -> tuple[np.ndarray, np.ndarray]:
        """Lazily-built (sorted items, lengths) arrays for one block.

        Blocks are immutable once materialized, so the catalog is built
        at most once per block and dropped with the block.
        """
        catalog = self._catalogs.get(block_id)
        if catalog is None:
            block_lists = self._block_lists(block_id)
            items = np.fromiter(
                block_lists.keys(), dtype=np.int64, count=len(block_lists)
            )
            counts = np.fromiter(
                (len(tids) for tids in block_lists.values()),
                dtype=np.int64,
                count=len(block_lists),
            )
            order = np.argsort(items)
            catalog = (items[order], counts[order])
            self._catalogs[block_id] = catalog
        return catalog

    def item_counts_array(self, block_id: int, items: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`item_counts`: lengths aligned to ``items``.

        One ``searchsorted`` against the cached per-block catalog —
        the batched counting engine asks for hundreds of lengths per
        block, where a Python-loop lookup would dominate its runtime.
        Items absent from the block get length 0.
        """
        cat_items, cat_counts = self._catalog(block_id)
        if len(cat_items) == 0:
            return np.zeros(len(items), dtype=np.int64)
        pos = np.searchsorted(cat_items, items)
        found = np.take(cat_items, pos, mode="clip") == items
        return np.where(found, np.take(cat_counts, pos, mode="clip"), 0)

    def _packed_catalog(self, block_id: int) -> tuple[np.ndarray, np.ndarray]:
        """Lazily-built (packed bitset rows, physical sizes) per block.

        Row ``r`` is the bitset of catalog item ``r``'s list; bitmap
        lists contribute their words directly, arrays are packed once
        via :func:`~repro.itemsets.kernels.pack_rows`.  The cache costs
        ``ceil(block_size / 8)`` bytes per catalog item, is built on
        first batched count against the block, and is dropped with the
        block.  It is a decoded in-memory representation only — fetch
        *charges* are still metered per batch by the counting engine.
        """
        packed = self._packed.get(block_id)
        if packed is None:
            cat_items, cat_counts = self._catalog(block_id)
            block_lists = self._block_lists(block_id)
            size = self._block_sizes[block_id]
            base = self._base_tids[block_id]
            width = (size + 7) >> 3
            matrix = np.zeros((len(cat_items), width), dtype=np.uint8)
            nbytes = cat_counts * TID_BYTES
            arrays: list[np.ndarray] = []
            rows: list[int] = []
            for r, item in enumerate(cat_items.tolist()):
                tids = block_lists[item]
                if isinstance(tids, BitmapTidList):
                    nbytes[r] = tids.nbytes
                    matrix[r] = tids.words.view(np.uint8)[:width]
                else:
                    if not isinstance(tids, np.ndarray):
                        # Compressed (cold) list: the dense engine
                        # wants packed rows, so decode this once; the
                        # charge stays the compressed physical size.
                        nbytes[r] = tids.nbytes
                        tids = tids.to_array()
                    arrays.append(tids)
                    rows.append(r)
            if arrays:
                matrix[np.asarray(rows, dtype=np.int64)] = pack_rows(
                    arrays, base, size
                )
            matrix.flags.writeable = False
            nbytes.flags.writeable = False
            packed = (matrix, nbytes)
            self._packed[block_id] = packed
        return packed

    def packed_rows(
        self, block_id: int, items: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Bitset rows, lengths, and physical sizes aligned to ``items``.

        The batched counting engine's bulk access path: one catalog
        lookup per call instead of one store fetch per list.  Items
        absent from the block get an all-zero row and size 0.  Returns
        fresh (writable) arrays; the underlying cache is frozen.
        """
        cat_items, cat_counts = self._catalog(block_id)
        matrix, cat_nbytes = self._packed_catalog(block_id)
        n = len(items)
        if len(cat_items) == 0:
            width = (self._block_sizes[block_id] + 7) >> 3
            return (
                np.zeros((n, width), dtype=np.uint8),
                np.zeros(n, dtype=np.int64),
                np.zeros(n, dtype=np.int64),
            )
        pos = np.minimum(np.searchsorted(cat_items, items), len(cat_items) - 1)
        found = cat_items[pos] == items
        rows = matrix[pos]
        rows[~found] = 0
        lens = np.where(found, cat_counts[pos], 0)
        nbytes = np.where(found, cat_nbytes[pos], 0)
        return rows, lens, nbytes

    def nbytes(self, block_id: int) -> int:
        """Physical size of one block's item TID-lists."""
        return sum(list_nbytes(t) for t in self._block_lists(block_id).values())

    def total_nbytes(self) -> int:
        """Physical size of all materialized item TID-lists."""
        return sum(self.nbytes(block_id) for block_id in self._lists)

    def count_itemset_in_block(self, block_id: int, itemset: Itemset) -> int:
        """Support count of ``itemset`` within one block via intersection."""
        if not itemset:
            return self._block_sizes.get(block_id, 0)
        # Fetch rarest-first and intersect progressively: the running
        # intersection only shrinks, and an empty one stops the fetches.
        by_rarity = sorted(itemset, key=lambda item: self.item_count(block_id, item))
        running = self.fetch_list(block_id, by_rarity[0])
        for item in by_rarity[1:]:
            if len(running) == 0:
                return 0
            running = intersect_pair(running, self.fetch_list(block_id, item))
        return int(len(running))

    def count_itemset(self, block_ids: Iterable[int], itemset: Itemset) -> int:
        """Support count of ``itemset`` over several blocks (additivity)."""
        return sum(self.count_itemset_in_block(b, itemset) for b in block_ids)
