"""Synthetic cluster data (Agrawal et al. 1998 style) for BIRCH+.

The paper's Figure 8 uses the CLIQUE/AGGR98 generator with datasets
named ``NM.Kc.dd``: ``N`` million points in ``d`` dimensions forming
``K`` clusters, plus a small fraction of uniformly distributed noise
perturbing the cluster structure.  This module reimplements that model:
Gaussian clusters at uniformly-placed centers (with a minimum center
separation so clusters are resolvable) and uniform background noise.
"""

from __future__ import annotations

import math
import random
import re
from collections.abc import Iterator
from dataclasses import dataclass

from repro.clustering.cf import Point
from repro.core.blocks import Block, make_block

_NAME_PATTERN = re.compile(r"^(?P<n>[\d.]+)M\.(?P<k>\d+)c\.(?P<d>\d+)d$")


@dataclass
class ClusterDataParams:
    """Cluster generator parameters.

    Attributes:
        n_points: Number of points to generate.
        n_clusters: Number of Gaussian clusters (``K``).
        dim: Dimensionality (``d``).
        domain: Points live in ``[0, domain]^d``.
        sigma: Within-cluster standard deviation per dimension.
        noise_fraction: Fraction of uniform background noise points.
    """

    n_points: int
    n_clusters: int = 50
    dim: int = 5
    domain: float = 100.0
    sigma: float = 1.0
    noise_fraction: float = 0.0

    @classmethod
    def from_name(
        cls, name: str, scale: float = 1.0, noise_fraction: float = 0.0
    ) -> "ClusterDataParams":
        """Parse a paper-style name such as ``1M.50c.5d``."""
        match = _NAME_PATTERN.match(name)
        if match is None:
            raise ValueError(f"cannot parse cluster dataset name {name!r}")
        return cls(
            n_points=max(int(float(match.group("n")) * 1_000_000 * scale), 1),
            n_clusters=int(match.group("k")),
            dim=int(match.group("d")),
            noise_fraction=noise_fraction,
        )


class ClusterDataGenerator:
    """Gaussian-cluster point stream with shared, stable centers.

    One generator instance fixes the cluster centers; successive blocks
    drawn from it model the paper's evolving database whose new blocks
    come from the same cluster structure (with fresh noise).

    Args:
        params: Generator parameters.
        seed: RNG seed.
    """

    def __init__(self, params: ClusterDataParams, seed: int = 0):
        if params.n_clusters < 1 or params.dim < 1:
            raise ValueError("need at least one cluster and one dimension")
        self.params = params
        self._rng = random.Random(seed)
        self.centers = self._place_centers()

    def _place_centers(self) -> list[Point]:
        """Uniform centers with a weak minimum-separation retry rule."""
        params = self.params
        min_separation = params.domain / (2.0 * params.n_clusters ** (1.0 / params.dim))
        centers: list[Point] = []
        attempts = 0
        while len(centers) < params.n_clusters:
            attempts += 1
            candidate = tuple(
                self._rng.uniform(0, params.domain) for _ in range(params.dim)
            )
            if attempts < 50 * params.n_clusters and any(
                math.dist(candidate, existing) < min_separation
                for existing in centers
            ):
                continue
            centers.append(candidate)
        return centers

    def point(self) -> Point:
        """One point: noise with the configured probability, else a
        Gaussian draw around a uniformly chosen center."""
        params = self.params
        if params.noise_fraction > 0 and self._rng.random() < params.noise_fraction:
            return tuple(
                self._rng.uniform(0, params.domain) for _ in range(params.dim)
            )
        center = self.centers[self._rng.randrange(params.n_clusters)]
        return tuple(
            coordinate + self._rng.gauss(0, params.sigma) for coordinate in center
        )

    def points(self, count: int) -> list[Point]:
        """Generate ``count`` points."""
        return [self.point() for _ in range(count)]

    def iter_points(self, count: int) -> Iterator[Point]:
        """Stream ``count`` points without materializing a list."""
        for _ in range(count):
            yield self.point()

    def block(
        self,
        block_id: int,
        count: int | None = None,
        label: str = "",
        backend=None,
    ) -> Block:
        """Generate one :class:`~repro.core.blocks.Block` of points.

        Records are streamed straight into ``backend`` when one is given
        (or the ambient ``DEMON_BLOCK_BACKEND`` backend otherwise), so a
        block larger than memory never exists as a Python list.
        """
        count = self.params.n_points if count is None else count
        return make_block(
            block_id, self.iter_points(count), label=label, backend=backend
        )
