"""Synthetic data generators behind the paper's experiments."""

from repro.datagen.clusters import ClusterDataGenerator, ClusterDataParams
from repro.datagen.proxytrace import (
    ANOMALY_DAY,
    GRANULARITIES,
    HOLIDAY_DAY,
    N_DAYS,
    ProxyTraceGenerator,
    is_weekend,
    is_working_day,
    regime_for,
    weekday,
)
from repro.datagen.quest import QuestGenerator, QuestParams, generate_named_dataset

__all__ = [
    "QuestGenerator",
    "QuestParams",
    "generate_named_dataset",
    "ClusterDataGenerator",
    "ClusterDataParams",
    "ProxyTraceGenerator",
    "weekday",
    "is_weekend",
    "is_working_day",
    "regime_for",
    "N_DAYS",
    "HOLIDAY_DAY",
    "ANOMALY_DAY",
    "GRANULARITIES",
]
