"""The IBM Quest synthetic transaction generator (Agrawal & Srikant 1994).

A from-scratch reimplementation of the generator behind every dataset
named like ``2M.20L.1I.4pats.4plen`` in the paper: ``N`` million
transactions of average length ``tl`` over ``|I|`` thousand items, with
``Np`` thousand potentially-frequent patterns of average length ``p``.

The generative model follows the published description:

* A pool of ``Np`` *patterns* (itemsets).  Pattern lengths are Poisson
  with the given mean; each pattern reuses an exponentially-distributed
  fraction of the previous pattern's items (inter-pattern correlation)
  and draws the rest uniformly.  Pattern weights are exponential,
  normalized to probabilities; each pattern carries a *corruption
  level* drawn from a clipped normal around 0.5.
* A transaction draws its Poisson length, then packs patterns chosen by
  weight: each chosen pattern is corrupted (items dropped while a coin
  keeps coming up below the corruption level) before insertion; a
  pattern that would overflow the remaining length is inserted anyway
  in half the cases and deferred otherwise.

The class is deterministic given its seed.
"""

from __future__ import annotations

import bisect
import math
import random
import re
from collections.abc import Iterator
from dataclasses import dataclass
from itertools import accumulate

from repro.core.blocks import Block, make_block
from repro.itemsets.itemset import Transaction, normalize_transaction

_NAME_PATTERN = re.compile(
    r"^(?P<n>[\d.]+)M\.(?P<tl>\d+)L\.(?P<items>[\d.]+)I\."
    r"(?P<pats>[\d.]+)pats\.(?P<plen>\d+)n?plen$"
)


@dataclass
class QuestParams:
    """Quest generator parameters.

    Attributes:
        n_transactions: Number of transactions to generate.
        avg_transaction_length: Mean transaction length (``tl``).
        n_items: Item universe size (``|I|``).
        n_patterns: Pattern pool size (``Np``).
        avg_pattern_length: Mean pattern length (``p``).
        correlation: Mean fraction of items shared with the previous
            pattern (0.5 in the original generator).
        corruption_mean: Mean pattern corruption level.
        corruption_sd: Standard deviation of the corruption level.
    """

    n_transactions: int
    avg_transaction_length: int = 20
    n_items: int = 1000
    n_patterns: int = 4000
    avg_pattern_length: int = 4
    correlation: float = 0.5
    corruption_mean: float = 0.5
    corruption_sd: float = 0.1

    @classmethod
    def from_name(cls, name: str, scale: float = 1.0) -> "QuestParams":
        """Parse a paper-style dataset name, optionally scaled down.

        ``from_name("2M.20L.1I.4pats.4plen", scale=1e-2)`` yields 20 000
        transactions with the structural parameters intact: the paper's
        comparisons depend on ratios and distribution shape rather than
        absolute scale (see DESIGN.md, substitutions).

        The item universe and pattern pool are scaled gently (square
        root of the transaction scale, floored) so that support
        *fractions* at a given κ stay in a comparable regime.
        """
        match = _NAME_PATTERN.match(name)
        if match is None:
            raise ValueError(f"cannot parse Quest dataset name {name!r}")
        n = int(float(match.group("n")) * 1_000_000 * scale)
        side_scale = max(min(math.sqrt(scale) * 10, 1.0), 0.05)
        return cls(
            n_transactions=max(n, 1),
            avg_transaction_length=int(match.group("tl")),
            n_items=max(int(float(match.group("items")) * 1000 * side_scale), 50),
            n_patterns=max(int(float(match.group("pats")) * 1000 * side_scale), 20),
            avg_pattern_length=int(match.group("plen")),
        )


@dataclass
class _Pattern:
    items: tuple[int, ...]
    corruption: float


class QuestGenerator:
    """Streamed Quest transactions with a reusable pattern pool.

    Two generators sharing a pattern pool produce blocks from the same
    "process"; changing ``n_patterns``/``avg_pattern_length`` between
    blocks reproduces the paper's drifting second blocks
    (``8pats``/``5plen`` in Figures 4–7).

    Args:
        params: Generator parameters.
        seed: RNG seed; generation is fully deterministic given it.
    """

    def __init__(self, params: QuestParams, seed: int = 0):
        if params.n_items < 2:
            raise ValueError("need at least 2 items")
        if params.avg_pattern_length < 1:
            raise ValueError("average pattern length must be >= 1")
        self.params = params
        self._rng = random.Random(seed)
        self._patterns = self._build_patterns()
        self._weights = self._build_weights()
        self._cum_weights = list(accumulate(self._weights))
        # Guard against floating-point sums landing a hair under 1.0.
        self._cum_weights[-1] = 1.0
        self._deferred: list[list[int]] = []

    # ------------------------------------------------------------------
    # Pattern pool
    # ------------------------------------------------------------------

    def _build_patterns(self) -> list[_Pattern]:
        rng = self._rng
        params = self.params
        patterns: list[_Pattern] = []
        previous: tuple[int, ...] = ()
        for _ in range(params.n_patterns):
            length = max(1, self._poisson(params.avg_pattern_length))
            length = min(length, params.n_items)
            reuse_fraction = min(rng.expovariate(1.0 / params.correlation), 1.0)
            n_reused = min(int(round(reuse_fraction * length)), len(previous))
            items = set(rng.sample(previous, n_reused)) if n_reused else set()
            while len(items) < length:
                items.add(rng.randrange(params.n_items))
            corruption = min(
                max(rng.gauss(params.corruption_mean, params.corruption_sd), 0.0), 1.0
            )
            pattern = tuple(sorted(items))
            patterns.append(_Pattern(items=pattern, corruption=corruption))
            previous = pattern
        return patterns

    def _build_weights(self) -> list[float]:
        weights = [self._rng.expovariate(1.0) for _ in self._patterns]
        total = sum(weights)
        return [w / total for w in weights]

    def _pick_pattern(self) -> int:
        """Weighted pattern choice via bisect on cumulative weights."""
        return bisect.bisect_left(self._cum_weights, self._rng.random())

    def _poisson(self, mean: float) -> int:
        """Knuth's algorithm; means here are small (≤ ~25)."""
        limit = math.exp(-mean)
        k = 0
        product = self._rng.random()
        while product > limit:
            k += 1
            product *= self._rng.random()
        return k

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def _corrupt(self, pattern: _Pattern) -> list[int]:
        items = list(pattern.items)
        while items and self._rng.random() < pattern.corruption:
            items.pop(self._rng.randrange(len(items)))
        return items

    def transaction(self) -> Transaction:
        """Generate one transaction."""
        rng = self._rng
        target = max(1, self._poisson(self.params.avg_transaction_length))
        chosen: set[int] = set()
        # Deferred pattern fragments from a previous overflowing pick.
        while self._deferred and len(chosen) < target:
            chosen.update(self._deferred.pop())
        guard = 0
        while len(chosen) < target and guard < 64:
            guard += 1
            index = self._pick_pattern()
            fragment = self._corrupt(self._patterns[index])
            if not fragment:
                continue
            if len(chosen) + len(fragment) > target and len(chosen) > 0:
                # Overflow: insert anyway half the time, defer otherwise.
                if rng.random() < 0.5:
                    chosen.update(fragment)
                    break
                self._deferred.append(fragment)
                break
            chosen.update(fragment)
        if not chosen:
            chosen.add(rng.randrange(self.params.n_items))
        return normalize_transaction(chosen)

    def transactions(self, count: int) -> list[Transaction]:
        """Generate ``count`` transactions."""
        return [self.transaction() for _ in range(count)]

    def iter_transactions(self, count: int) -> Iterator[Transaction]:
        """Stream ``count`` transactions without materializing a list."""
        for _ in range(count):
            yield self.transaction()

    def block(
        self,
        block_id: int,
        count: int | None = None,
        label: str = "",
        backend=None,
    ) -> Block:
        """Generate one :class:`~repro.core.blocks.Block` of transactions.

        Records are streamed straight into ``backend`` when one is given
        (or the ambient ``DEMON_BLOCK_BACKEND`` backend otherwise), so a
        block larger than memory never exists as a Python list.
        """
        count = self.params.n_transactions if count is None else count
        return make_block(
            block_id, self.iter_transactions(count), label=label, backend=backend
        )


def generate_named_dataset(
    name: str, scale: float = 1.0, seed: int = 0, block_id: int = 1
) -> Block:
    """One-call helper: a block for a paper-style dataset name."""
    params = QuestParams.from_name(name, scale=scale)
    return QuestGenerator(params, seed=seed).block(block_id)
