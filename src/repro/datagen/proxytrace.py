"""Synthetic web-proxy request trace — substitute for the DEC traces (§5.3).

The paper's pattern-detection experiments run on 21 days of DEC web
proxy traces (Sep 2 – Sep 22, 1996), where each request carries a
timestamp, an object type (10 classes) and a response size discretized
into 10 000-byte buckets; each request is treated as the 2-item
transaction ``{type, size-bucket}`` and blocks are cut at 4/6/8/12/24
hour granularities.

The traces are no longer a redistributable download, so this module
generates a synthetic trace that plants exactly the regime structure
the paper discovered, giving the compact-sequence miner the same ground
truth to recover:

* distinct *working-day* daytime/afternoon/evening request mixtures
  (Mon–Fri), with Tuesday and Thursday evenings sharing their own
  mixture — the paper's "4PM–12PM on all Tuesdays and Thursdays";
* a *weekend* mixture that late-night weekday blocks also drift into;
* day 0 is Labor-Day Monday (behaves like a weekend) and day 7 — the
  paper's anomalous Monday 9-9-1996 — follows a one-off mixture unlike
  anything else.

Calendar convention: day 0 is Monday 1996-09-02; hours are 0–23.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.blocks import Block, make_block
from repro.itemsets.itemset import Transaction

#: Object type item identifiers occupy 0..9.
N_TYPES = 10
#: Size buckets are offset so they never collide with type ids.
BUCKET_BASE = 100
N_BUCKETS = 1000

#: Number of simulated days (day 0 = Monday 1996-09-02).
N_DAYS = 21
HOLIDAY_DAY = 0
ANOMALY_DAY = 7

#: The paper's five block granularities, in hours.
GRANULARITIES = (4, 6, 8, 12, 24)


def weekday(day: int) -> int:
    """Day of week for a trace day (0 = Monday .. 6 = Sunday)."""
    return day % 7


def is_weekend(day: int) -> bool:
    """Whether the trace day is Saturday or Sunday."""
    return weekday(day) >= 5


def is_working_day(day: int) -> bool:
    """Mon–Fri and not the Labor-Day holiday."""
    return not is_weekend(day) and day != HOLIDAY_DAY


@dataclass(frozen=True)
class _Regime:
    """One request mixture: type probabilities and per-type size means.

    ``type_weights`` is a length-10 categorical; ``size_means[t]`` is
    the mean size bucket of type ``t`` (sizes are geometric around it).
    """

    name: str
    type_weights: tuple[float, ...]
    size_means: tuple[float, ...]
    rate_per_hour: float


def _mk_regime(name: str, hot_types: dict[int, float], base_mean: float,
               hot_means: dict[int, float], rate: float) -> _Regime:
    weights = [0.02] * N_TYPES
    for type_id, weight in hot_types.items():
        weights[type_id] = weight
    total = sum(weights)
    means = [base_mean] * N_TYPES
    for type_id, mean in hot_means.items():
        means[type_id] = mean
    return _Regime(
        name=name,
        type_weights=tuple(w / total for w in weights),
        size_means=tuple(means),
        rate_per_hour=rate,
    )


#: The planted mixtures.  Types loosely: 0=html 1=gif 2=jpg 3=cgi 4=text
#: 5=video 6=audio 7=zip 8=exe 9=other.
REGIMES = {
    "work_morning": _mk_regime(
        "work_morning", {0: 0.40, 1: 0.25, 2: 0.12, 3: 0.08}, 3.0,
        {0: 2.0, 1: 4.0, 2: 9.0}, rate=600,
    ),
    "work_afternoon": _mk_regime(
        "work_afternoon", {0: 0.35, 1: 0.22, 2: 0.15, 3: 0.12}, 3.5,
        {0: 2.0, 1: 4.5, 2: 10.0}, rate=700,
    ),
    "work_evening": _mk_regime(
        "work_evening", {0: 0.22, 1: 0.18, 2: 0.22, 5: 0.14}, 6.0,
        {2: 12.0, 5: 40.0}, rate=300,
    ),
    "tuethu_evening": _mk_regime(
        "tuethu_evening", {0: 0.12, 2: 0.18, 5: 0.30, 6: 0.18}, 10.0,
        {5: 60.0, 6: 30.0, 2: 14.0}, rate=350,
    ),
    "night": _mk_regime(
        "night", {7: 0.25, 8: 0.20, 5: 0.18, 9: 0.12}, 20.0,
        {7: 80.0, 8: 60.0, 5: 50.0}, rate=80,
    ),
    "weekend": _mk_regime(
        "weekend", {2: 0.25, 5: 0.22, 1: 0.15, 6: 0.12}, 12.0,
        {2: 15.0, 5: 55.0, 6: 25.0}, rate=150,
    ),
    "anomaly": _mk_regime(
        "anomaly", {3: 0.45, 9: 0.25, 4: 0.15}, 1.0,
        {3: 1.0, 9: 2.0, 4: 1.0}, rate=900,
    ),
}


def regime_for(day: int, hour: int) -> _Regime:
    """The planted mixture in force on a given day and hour."""
    if day == ANOMALY_DAY:
        return REGIMES["anomaly"]
    if is_weekend(day) or day == HOLIDAY_DAY:
        if hour < 8:
            return REGIMES["night"]
        return REGIMES["weekend"]
    # Working day.
    if hour < 8:
        return REGIMES["night"]
    if hour < 12:
        return REGIMES["work_morning"]
    if hour < 16:
        return REGIMES["work_afternoon"]
    if weekday(day) in (1, 3):  # Tuesday, Thursday
        return REGIMES["tuethu_evening"]
    return REGIMES["work_evening"]


class ProxyTraceGenerator:
    """Deterministic synthetic trace over the 21-day calendar.

    Args:
        scale: Multiplier on per-hour request rates (1.0 ≈ a few
            hundred requests per working hour; benchmarks typically use
            0.05–0.2).
        seed: RNG seed.
    """

    def __init__(self, scale: float = 0.1, seed: int = 0):
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale
        self.seed = seed

    def _hour_requests(self, day: int, hour: int) -> list[Transaction]:
        """All requests of one simulated hour."""
        regime = regime_for(day, hour)
        # Per-hour RNG keyed by (seed, day, hour): regenerating a block
        # at a different granularity yields the identical requests.
        rng = random.Random(f"{self.seed}:{day}:{hour}")
        count = self._poisson(rng, regime.rate_per_hour * self.scale)
        requests: list[Transaction] = []
        types = range(N_TYPES)
        for _ in range(count):
            type_id = rng.choices(types, weights=regime.type_weights)[0]
            mean = regime.size_means[type_id]
            # Geometric size bucket with the regime/type mean.
            bucket = min(int(rng.expovariate(1.0 / max(mean, 0.5))), N_BUCKETS - 1)
            requests.append((type_id, BUCKET_BASE + bucket))
        return requests

    @staticmethod
    def _poisson(rng: random.Random, mean: float) -> int:
        if mean <= 0:
            return 0
        if mean > 50:
            # Normal approximation keeps large blocks cheap.
            return max(0, int(round(rng.gauss(mean, math.sqrt(mean)))))
        limit = math.exp(-mean)
        k = 0
        product = rng.random()
        while product > limit:
            k += 1
            product *= rng.random()
        return k

    def blocks(
        self, granularity_hours: int = 6, backend=None
    ) -> list[Block[Transaction]]:
        """Segment the whole trace into blocks of the given granularity.

        Block ids start at 1; labels look like ``"day03 Mon 12-18h"``
        and metadata carries ``day``, ``weekday``, ``start_hour`` and
        ``granularity`` for calendar-aware reporting.  Block records are
        routed onto ``backend`` when one is given (or the ambient
        ``DEMON_BLOCK_BACKEND`` backend otherwise).
        """
        if 24 % granularity_hours != 0:
            raise ValueError(
                f"granularity must divide 24 hours, got {granularity_hours}"
            )
        day_names = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")
        blocks: list[Block[Transaction]] = []
        block_id = 1
        for day in range(N_DAYS):
            for start_hour in range(0, 24, granularity_hours):
                requests: list[Transaction] = []
                for hour in range(start_hour, start_hour + granularity_hours):
                    requests.extend(self._hour_requests(day, hour))
                label = (
                    f"day{day:02d} {day_names[weekday(day)]} "
                    f"{start_hour:02d}-{start_hour + granularity_hours:02d}h"
                )
                blocks.append(
                    make_block(
                        block_id,
                        requests,
                        label=label,
                        backend=backend,
                        metadata={
                            "day": day,
                            "weekday": weekday(day),
                            "start_hour": start_hour,
                            "granularity": granularity_hours,
                            "holiday": day == HOLIDAY_DAY,
                            "anomaly": day == ANOMALY_DAY,
                        },
                    )
                )
                block_id += 1
        return blocks
