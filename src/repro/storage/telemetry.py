"""The unified telemetry spine (phases, counters, per-subsystem I/O).

Every timed span in ``src/repro`` flows through one of two places: the
raw :class:`~repro.storage.iostats.Stopwatch` (restricted to
``repro/storage/`` by demonlint rule DML007) or — everywhere else — a
:class:`Telemetry` phase span built on top of it.  A ``Telemetry``
instance aggregates three kinds of signal:

* **phases** — named wall-clock spans (``borders.detection``,
  ``gemm.critical``, ``birch.phase2``, ...), each accumulating total
  seconds and a call count;
* **counters** — named monotonic event counts (``borders.promotions``,
  ``gemm.invocations.offline``, ``patterns.comparisons``, ...);
* **attached I/O** — references to the
  :class:`~repro.storage.iostats.IOStatsRegistry` instances of the
  subsystems feeding this spine, so byte accounting shows up in the
  same report without per-counter plumbing.

Components (maintainers, GEMM, miners, deviation functions) each own a
private ``Telemetry`` by default so they stay usable standalone; a
:class:`~repro.core.session.MiningSession` rebinds them onto its single
shared spine via :func:`bind_telemetry`.

Deltas: :meth:`Telemetry.snapshot` and :meth:`Telemetry.delta_since`
give per-block (or per-anything) differences, which is how
``MonitorReport.telemetry`` carries exactly one observation's cost.

The phase taxonomy and counter names are documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import TracebackType
from typing import Any

from repro.storage.iostats import IOStats, IOStatsRegistry, Stopwatch


@dataclass
class PhaseStats:
    """Accumulated cost of one named phase.

    Attributes:
        seconds: Total wall-clock over all completed spans.
        calls: Number of completed spans.
    """

    seconds: float = 0.0
    calls: int = 0

    def copy(self) -> "PhaseStats":
        return PhaseStats(self.seconds, self.calls)


class PhaseSpan:
    """One timed span of a named phase.

    Usable as a context manager (``with telemetry.phase("x") as span``)
    or via explicit :meth:`start`/:meth:`stop` when the span does not
    nest lexically.  On completion the measured seconds are recorded
    into the owning :class:`Telemetry` and exposed as :attr:`seconds`
    so callers can also stash them in their own report dataclasses.
    """

    __slots__ = ("_telemetry", "name", "seconds", "_watch")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self.name = name
        #: Seconds measured by this span (0.0 until stopped).
        self.seconds = 0.0
        self._watch = Stopwatch()

    def start(self) -> "PhaseSpan":
        """Begin the span; returns self for chaining."""
        self._watch.start()
        return self

    def stop(self) -> float:
        """End the span, record it into the telemetry, return seconds."""
        self.seconds = self._watch.stop()
        self._telemetry.record_phase(self.name, self.seconds)
        return self.seconds

    def __enter__(self) -> "PhaseSpan":
        return self.start()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.stop()


@dataclass
class TelemetrySnapshot:
    """A frozen copy of a :class:`Telemetry`'s state (or a delta of two).

    Attributes:
        phases: Phase name -> accumulated :class:`PhaseStats`.
        counters: Counter name -> accumulated count.
        io: Subsystem name -> a frozen :class:`IOStatsRegistry` copy.
    """

    phases: dict[str, PhaseStats] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    io: dict[str, IOStatsRegistry] = field(default_factory=dict)

    def phase_seconds(self, name: str) -> float:
        """Seconds accumulated under one phase (0.0 if never entered)."""
        stats = self.phases.get(name)
        return stats.seconds if stats is not None else 0.0

    def phase_calls(self, name: str) -> int:
        """Completed spans of one phase (0 if never entered)."""
        stats = self.phases.get(name)
        return stats.calls if stats is not None else 0

    def counter(self, name: str) -> int:
        """One counter's value (0 if never incremented)."""
        return self.counters.get(name, 0)

    def io_totals(self) -> IOStats:
        """All attached subsystems' I/O rolled into one counter."""
        total = IOStats()
        for registry in self.io.values():
            rolled = registry.totals()
            total.bytes_read += rolled.bytes_read
            total.bytes_written += rolled.bytes_written
            total.reads += rolled.reads
            total.writes += rolled.writes
            total.cache_hits += rolled.cache_hits
            total.bytes_cached += rolled.bytes_cached
        return total

    def report(self) -> dict[str, Any]:
        """Plain-dict rendering suitable for JSON."""
        return {
            "phases": {
                name: {"seconds": stats.seconds, "calls": stats.calls}
                for name, stats in sorted(self.phases.items())
            },
            "counters": dict(sorted(self.counters.items())),
            "io": {
                name: registry.report()
                for name, registry in sorted(self.io.items())
            },
        }


class Telemetry:  # demonlint: disable=DML008 (attached ``_io`` registries are live references owned by their subsystems; persisting them here would double-count — see state_dict docstring)
    """One instrumentation spine: phases, counters, attached I/O.

    Cheap to construct; components default to a private instance so
    they meter themselves even when driven standalone, and a session
    rebinds them onto its shared spine with :func:`bind_telemetry`.
    """

    def __init__(self) -> None:
        self.phases: dict[str, PhaseStats] = {}
        self.counters: dict[str, int] = {}
        self._io: dict[str, IOStatsRegistry] = {}

    # -- phases ---------------------------------------------------------

    def phase(self, name: str) -> PhaseSpan:
        """A new span of the named phase (not yet started)."""
        return PhaseSpan(self, name)

    def record_phase(self, name: str, seconds: float) -> None:
        """Account one completed span of ``seconds`` under ``name``."""
        if seconds < 0:
            raise ValueError(f"phase seconds must be non-negative, got {seconds}")
        stats = self.phases.setdefault(name, PhaseStats())
        stats.seconds += seconds
        stats.calls += 1

    # -- counters -------------------------------------------------------

    def increment(self, name: str, n: int = 1) -> None:
        """Add ``n`` events to the named counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    # -- attached I/O ---------------------------------------------------

    def attach_io(self, subsystem: str, registry: IOStatsRegistry) -> None:
        """Expose a subsystem's I/O registry through this spine.

        The registry is referenced, not copied — its live counters feed
        every subsequent :meth:`snapshot`/:meth:`report`.  Attaching the
        same name again replaces the reference (idempotent re-wiring).
        """
        self._io[subsystem] = registry

    @property
    def io(self) -> dict[str, IOStatsRegistry]:
        """The attached subsystem registries (live references)."""
        return dict(self._io)

    # -- snapshots and deltas ------------------------------------------

    def snapshot(self) -> TelemetrySnapshot:
        """An independent frozen copy of phases, counters, and I/O."""
        return TelemetrySnapshot(
            phases={name: stats.copy() for name, stats in self.phases.items()},
            counters=dict(self.counters),
            io={name: reg.snapshot() for name, reg in self._io.items()},
        )

    def delta_since(self, earlier: TelemetrySnapshot) -> TelemetrySnapshot:
        """Everything accumulated since ``earlier`` was snapshotted."""
        phases: dict[str, PhaseStats] = {}
        for name, stats in self.phases.items():
            before = earlier.phases.get(name, PhaseStats())
            phases[name] = PhaseStats(
                seconds=stats.seconds - before.seconds,
                calls=stats.calls - before.calls,
            )
        counters = {
            name: value - earlier.counters.get(name, 0)
            for name, value in self.counters.items()
        }
        io = {
            name: reg.delta_since(
                earlier.io.get(name, IOStatsRegistry())
            )
            for name, reg in self._io.items()
        }
        return TelemetrySnapshot(phases=phases, counters=counters, io=io)

    def report(self) -> dict[str, Any]:
        """Plain-dict rendering of the current totals."""
        return self.snapshot().report()

    # -- checkpoint persistence ----------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """Serializable phase/counter totals (I/O stays with its owners:
        the registries are attached live objects, persisted — when they
        are persisted at all — inside the subsystems that own them)."""
        return {
            "phases": {
                name: (stats.seconds, stats.calls)
                for name, stats in self.phases.items()
            },
            "counters": dict(self.counters),
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore phase/counter totals saved by :meth:`state_dict`."""
        self.phases = {
            name: PhaseStats(seconds=seconds, calls=calls)
            for name, (seconds, calls) in state["phases"].items()
        }
        self.counters = dict(state["counters"])

    def merge_state_dict(
        self, state: dict[str, Any], prefix: str = ""
    ) -> None:
        """Fold another telemetry's :meth:`state_dict` into this one.

        This is how worker-process telemetry flows back to the parent
        spine: the worker serializes its private instance, the parent
        merges the envelope twice — once bare (so aggregate phase and
        counter totals stay comparable with a serial run) and once under
        a ``parallel.w{id}.`` prefix for per-worker attribution.  Phase
        seconds and calls add; counters add; attached I/O never crosses
        (``state_dict`` deliberately omits it).
        """
        for name, (seconds, calls) in state["phases"].items():
            stats = self.phases.setdefault(prefix + name, PhaseStats())
            stats.seconds += seconds
            stats.calls += calls
        for name, value in state["counters"].items():
            self.increment(prefix + name, value)


class DiagnosticsLog:
    """Latest-value log for "what did the last operation cost" records.

    Maintainers decorated ``pure_unless_cloned`` promise not to store
    run state on ``self`` (demonlint rule DML012 checks the promise
    transitively).  Diagnostics such as "the stats of the most recent
    ``add_block``" are observability, not model state, so they flow
    through this sanctioned side channel — mirroring how phase timings
    flow through :class:`Telemetry` — instead of through direct
    attribute stores inside the pure method.
    """

    def __init__(self) -> None:
        self._latest: dict[str, Any] = {}

    def record(self, channel: str, entry: Any) -> None:
        """Store ``entry`` as the most recent value on ``channel``."""
        self._latest[channel] = entry

    def latest(self, channel: str, default: Any = None) -> Any:
        """The most recent entry on ``channel`` (or ``default``)."""
        return self._latest.get(channel, default)

    def entries(self) -> dict[str, Any]:
        """A snapshot of every channel's most recent entry.

        Worker shards diff this before/after an operation to ship back
        only the diagnostics that operation actually recorded (see
        :mod:`repro.parallel.shards`).
        """
        return dict(self._latest)


def bind_telemetry(component: object, telemetry: Telemetry) -> None:
    """Point a component's instrumentation at a shared spine.

    Components that need to propagate the binding (e.g. a pattern miner
    forwarding to its similarity predicate) define ``bind_telemetry``;
    everything else just carries a ``telemetry`` attribute that is
    reassigned.  Objects with neither are left alone, so duck-typed
    test doubles keep working.
    """
    binder = getattr(component, "bind_telemetry", None)
    if callable(binder):
        binder(telemetry)
        return
    try:
        setattr(component, "telemetry", telemetry)
    except AttributeError:
        pass
