"""Simulated storage layer with logical I/O accounting.

DEMON's efficiency arguments are about bytes fetched from disk.  This
package provides an in-memory :class:`BlockStore` that charges every
scan to an :class:`IOStats` counter so benchmarks can report the same
shapes the paper does.
"""

from repro.storage.blockstore import (
    BlockStore,
    FLOAT_BYTES,
    INT_BYTES,
    StoredBlock,
    point_nbytes,
    tidlist_nbytes,
    transaction_nbytes,
)
from repro.storage.engine import (
    BlockBackend,
    BlockSchema,
    InMemoryBackend,
    MmapBackend,
    SchemaError,
    ambient_backend,
    backend_from_spec,
    resolve_backend,
)
from repro.storage.iostats import GLOBAL_IO_REGISTRY, IOStats, IOStatsRegistry
from repro.storage.persist import (
    ModelVault,
    VaultFullError,
    load_model,
    save_model,
)
from repro.storage.telemetry import (
    PhaseSpan,
    PhaseStats,
    Telemetry,
    TelemetrySnapshot,
    bind_telemetry,
)

__all__ = [
    "BlockStore",
    "StoredBlock",
    "BlockBackend",
    "BlockSchema",
    "InMemoryBackend",
    "MmapBackend",
    "SchemaError",
    "ambient_backend",
    "backend_from_spec",
    "resolve_backend",
    "IOStats",
    "IOStatsRegistry",
    "GLOBAL_IO_REGISTRY",
    "INT_BYTES",
    "FLOAT_BYTES",
    "transaction_nbytes",
    "tidlist_nbytes",
    "point_nbytes",
    "ModelVault",
    "VaultFullError",
    "save_model",
    "load_model",
    "Telemetry",
    "TelemetrySnapshot",
    "PhaseStats",
    "PhaseSpan",
    "bind_telemetry",
]
