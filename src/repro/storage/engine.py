"""Pluggable block storage backends behind one streaming ingest spine.

DEMON's premise is block evolution — models are maintained as blocks
arrive and expire — so the dataset must not be forced to fit in RAM.
This module supplies the seam: a :class:`BlockBackend` turns a record
stream into a :class:`~repro.core.blocks.BlockData` that the
:class:`~repro.core.blocks.Block` handle wraps, and every consumer
iterates chunk-wise through the handle, never touching raw record
lists (demonlint DML013).

Three backends ship:

* :class:`InMemoryBackend` — the historical behaviour: records live as
  one materialized tuple, now with chunked iteration and byte metering.
* :class:`MmapBackend` — an on-disk columnar layout under a block
  directory: dense float blocks store one ``.npy`` per column, ragged
  integer transactions store a CSR pair (``values.npy``/``offsets.npy``),
  anything else falls back to per-chunk pickles.  Arrays are lazily
  opened with ``numpy`` memory mapping and released by :meth:`close`,
  so resident memory stays bounded by the chunk size, not the block.
* :class:`TieredBackend` — mmap storage plus a hot/cold lifecycle:
  blocks expired from the most recent window compact to compressed
  per-chunk blobs (``storage/codecs.py``) in one ``packed.bin``,
  cutting disk and resident bytes severalfold; a cold block that keeps
  being scanned promotes itself back to the dense layout.

Byte accounting is *logical* and backend-independent (4 bytes per
integer field, 8 per coordinate, pickled size otherwise — see
:func:`repro.core.blocks.record_nbytes`): ingest charges one write of
the block's size, every yielded chunk charges one read of that chunk's
size.  Identical data therefore produces identical
:class:`~repro.storage.iostats.IOStats` on either backend, which the
backend-equivalence suite asserts.

The ambient backend: setting ``DEMON_BLOCK_BACKEND=mmap`` routes every
:func:`~repro.core.blocks.make_block` call through one shared on-disk
backend (a process-lifetime temporary directory), letting the whole
test suite run against mmap storage without touching call sites.
``DEMON_BLOCK_CHUNK`` sets the default chunk size.
"""

from __future__ import annotations

import atexit
import json
import os
import pickle
import shutil
import tempfile
import weakref
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from itertools import islice
from typing import Any, Generic, TypeVar

import numpy as np

from repro.contracts import (
    SanitizerViolation,
    blocking_call,
    claim_ownership,
    critical_section,
    sanitizers_armed,
    write_barrier,
)
from repro.storage.atomic import atomic_json, atomic_save, atomic_writer
from repro.core.blocks import (
    FLOAT_BYTES,
    INT_BYTES,
    Block,
    InMemoryBlockData,
    default_chunk_size,
    records_nbytes,
)
from repro.storage.iostats import IOStats, IOStatsRegistry

T = TypeVar("T")

#: Columnar layout kinds a block directory can hold.
KIND_CSR = "csr"
KIND_DENSE = "dense"
KIND_PICKLE = "pickle"

#: Version stamp of the on-disk block directory layout.
BLOCK_DIR_FORMAT = 1

#: Counter name backends charge ingest writes and chunk reads to.
BACKEND_COUNTER = "block_backend"


class SchemaError(TypeError):
    """A record stream does not conform to its block's inferred schema."""


@dataclass(frozen=True)
class BlockSchema:
    """The columnar layout chosen for one block.

    Attributes:
        kind: ``"csr"`` (ragged integer transactions), ``"dense"``
            (fixed-width float points), or ``"pickle"`` (fallback).
        width: Column count; meaningful for the dense kind only.
    """

    kind: str
    width: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "width": self.width}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "BlockSchema":
        return cls(kind=payload["kind"], width=int(payload.get("width", 0)))


def _is_int_record(record: Any) -> bool:
    return isinstance(record, tuple) and all(type(v) is int for v in record)


def _is_float_record(record: Any, width: int) -> bool:
    return (
        isinstance(record, tuple)
        and len(record) == width
        and all(type(v) is float for v in record)
    )


def infer_schema(records: Sequence[Any]) -> BlockSchema:
    """Choose a columnar layout from the first chunk of a record stream.

    Ragged tuples of plain ``int`` become CSR, fixed-width tuples of
    plain ``float`` become dense npy-per-column, everything else (e.g.
    labelled points) is stored as pickled chunks.  Empty blocks are
    vacuously CSR.
    """
    if not records:
        return BlockSchema(KIND_CSR)
    if all(_is_int_record(r) for r in records):
        return BlockSchema(KIND_CSR)
    width = len(records[0]) if isinstance(records[0], tuple) else 0
    if width and all(_is_float_record(r, width) for r in records):
        return BlockSchema(KIND_DENSE, width=width)
    return BlockSchema(KIND_PICKLE)


def _chunked(records: Iterable[T], size: int) -> Iterator[list[T]]:
    iterator = iter(records)
    while True:
        chunk = list(islice(iterator, size))
        if not chunk:
            return
        yield chunk


def _fresh(value: Any) -> Any:
    """Rebuild a record without shared sub-objects.

    Checkpoints must be byte-identical across backends, but pickle
    memoizes by object *identity*: a caller that reuses one tuple for
    two records would pickle differently on the in-memory backend
    (which keeps caller objects) than on mmap (which rebuilds records
    from columns).  Canonicalizing at ingest removes aliasing on both
    paths, so equal data always produces equal bytes.
    """
    kind = type(value)
    if kind is tuple:
        return tuple(_fresh(v) for v in value)
    if kind is list:
        return [_fresh(v) for v in value]
    if kind is str:
        return value.encode("utf-8").decode("utf-8")
    return value


def _fresh_records(records: Iterable[T]) -> Iterator[T]:
    return (_fresh(record) for record in records)


# ----------------------------------------------------------------------
# Runtime sanitizer views (the dynamic half of DML014/DML015)
# ----------------------------------------------------------------------


class ChunkView(list):
    """A chunk that knows when its backing buffers were released.

    Armed backends yield these instead of plain lists.  When the
    owning data's :meth:`MmapBlockData.close` runs, every live view is
    *poisoned*: element access afterwards raises
    :class:`~repro.contracts.SanitizerViolation` — the dynamic
    counterpart of demonlint DML015 (a chunk view stored past its
    block's lifetime is a dangling pointer once the backend unmaps).
    """

    __slots__ = ("_poisoned", "__weakref__")

    #: Identity hash (plain lists are unhashable) so the owning data
    #: can hold poisoning targets in a WeakSet without pinning them.
    __hash__ = object.__hash__

    def __init__(self, items: Iterable[Any] = ()) -> None:
        super().__init__(items)
        self._poisoned = False

    def _poison(self) -> None:
        self._poisoned = True

    def _guard(self) -> None:
        if self._poisoned:
            raise SanitizerViolation(
                "chunk view used after its backend was closed; the "
                "backing buffers are unmapped — copy chunks you need "
                "to keep (DML015)"
            )

    def __iter__(self) -> Iterator[Any]:
        self._guard()
        return super().__iter__()

    def __getitem__(self, index: Any) -> Any:
        self._guard()
        return super().__getitem__(index)


# ----------------------------------------------------------------------
# Metered in-memory data
# ----------------------------------------------------------------------


class MeteredMemoryData(InMemoryBlockData[T]):
    """In-memory block data that charges reads to an :class:`IOStats`."""

    __slots__ = ("_stats", "_chunk_size")

    def __init__(
        self,
        records: Iterable[T],
        stats: IOStats,
        chunk_size: int | None = None,
    ) -> None:
        super().__init__(_fresh_records(records))
        self._stats = stats
        self._chunk_size = chunk_size

    def chunks(self, chunk_size: int | None = None) -> Iterator[Sequence[T]]:
        if chunk_size is None:
            chunk_size = self._chunk_size
        for chunk in super().chunks(chunk_size):
            self._stats.record_read(records_nbytes(chunk))
            yield chunk

    def materialize(self) -> tuple[T, ...]:
        self._stats.record_read(self.nbytes)
        return super().materialize()

    def as_array(self, dtype: Any = float) -> Any:
        self._stats.record_read(self.nbytes)
        return np.asarray(super().materialize(), dtype=dtype)


# ----------------------------------------------------------------------
# The on-disk columnar layout
# ----------------------------------------------------------------------


def _write_block_dir(
    path: str, records: Iterable[T], chunk_size: int
) -> "MmapBlockData[T]":
    """Stream ``records`` into a columnar block directory at ``path``."""
    os.makedirs(path, exist_ok=True)
    chunks = _chunked(records, chunk_size)
    first = next(chunks, [])
    schema = infer_schema(first)
    if schema.kind == KIND_CSR:
        num_records, nbytes = _write_csr(path, first, chunks)
        chunk_rows: list[dict[str, int]] = []
    elif schema.kind == KIND_DENSE:
        num_records, nbytes = _write_dense(path, first, chunks, schema.width)
        chunk_rows = []
    else:
        num_records, nbytes, chunk_rows = _write_pickle(path, first, chunks)
    meta = {
        "format": BLOCK_DIR_FORMAT,
        "schema": schema.to_dict(),
        "num_records": num_records,
        "nbytes": nbytes,
        "chunk_size": chunk_size,
        "chunks": chunk_rows,
    }
    atomic_json(os.path.join(path, "meta.json"), meta)
    return MmapBlockData(
        path=path,
        schema=schema,
        num_records=num_records,
        nbytes=nbytes,
        chunk_rows=chunk_rows,
        chunk_size=chunk_size,
    )


def _check_conforms(chunk: Sequence[Any], schema: BlockSchema) -> None:
    if schema.kind == KIND_CSR:
        bad = next((r for r in chunk if not _is_int_record(r)), None)
    else:
        bad = next((r for r in chunk if not _is_float_record(r, schema.width)), None)
    if bad is not None:
        raise SchemaError(
            f"record {bad!r} does not match the block's inferred "
            f"{schema.kind} schema; blocks must be type-homogeneous"
        )


def _write_csr(
    path: str, first: list[Any], rest: Iterator[list[Any]]
) -> tuple[int, int]:
    value_parts: list[np.ndarray] = []
    length_parts: list[np.ndarray] = []
    num_records = 0
    for chunk in _prepend(first, rest):
        _check_conforms(chunk, BlockSchema(KIND_CSR))
        length_parts.append(
            np.fromiter((len(r) for r in chunk), dtype=np.int64, count=len(chunk))
        )
        flat = [v for record in chunk for v in record]
        value_parts.append(np.asarray(flat, dtype=np.int64))
        num_records += len(chunk)
    values = (
        np.concatenate(value_parts)
        if value_parts
        else np.empty(0, dtype=np.int64)
    )
    lengths = (
        np.concatenate(length_parts)
        if length_parts
        else np.empty(0, dtype=np.int64)
    )
    offsets = np.zeros(num_records + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    atomic_save(os.path.join(path, "values.npy"), values)
    atomic_save(os.path.join(path, "offsets.npy"), offsets)
    return num_records, INT_BYTES * int(values.shape[0])


def _write_dense(
    path: str, first: list[Any], rest: Iterator[list[Any]], width: int
) -> tuple[int, int]:
    columns: list[list[np.ndarray]] = [[] for _ in range(width)]
    num_records = 0
    schema = BlockSchema(KIND_DENSE, width=width)
    for chunk in _prepend(first, rest):
        _check_conforms(chunk, schema)
        arr = np.asarray(chunk, dtype=np.float64).reshape(len(chunk), width)
        for j in range(width):
            columns[j].append(arr[:, j])
        num_records += len(chunk)
    for j in range(width):
        column = (
            np.concatenate(columns[j])
            if columns[j]
            else np.empty(0, dtype=np.float64)
        )
        atomic_save(os.path.join(path, f"col_{j:03d}.npy"), column)
    return num_records, FLOAT_BYTES * width * num_records


def _write_pickle(
    path: str, first: list[Any], rest: Iterator[list[Any]]
) -> tuple[int, int, list[dict[str, int]]]:
    chunk_rows: list[dict[str, int]] = []
    num_records = 0
    nbytes = 0
    for index, chunk in enumerate(_prepend(first, rest)):
        with atomic_writer(os.path.join(path, f"chunk_{index:05d}.pkl")) as fh:
            # Canonicalized records keep the stored bytes free of
            # caller-side object aliasing (see _fresh).
            pickle.dump(
                [_fresh(r) for r in chunk], fh, protocol=pickle.HIGHEST_PROTOCOL
            )
        chunk_nbytes = records_nbytes(chunk)
        chunk_rows.append({"count": len(chunk), "nbytes": chunk_nbytes})
        num_records += len(chunk)
        nbytes += chunk_nbytes
    return num_records, nbytes, chunk_rows


def _prepend(first: list[T], rest: Iterator[list[T]]) -> Iterator[list[T]]:
    if first:
        yield first
    yield from rest


class MmapBlockData(Generic[T]):
    """Lazily memory-mapped record storage under one block directory."""

    __slots__ = (
        "path",
        "schema",
        "_num_records",
        "_nbytes",
        "_chunk_rows",
        "_chunk_size",
        "_stats",
        "_cache",
        "_views",
        "_sealed",
        "__weakref__",
    )

    def __init__(
        self,
        path: str,
        schema: BlockSchema,
        num_records: int,
        nbytes: int,
        chunk_rows: list[dict[str, int]],
        chunk_size: int | None = None,
        stats: IOStats | None = None,
    ) -> None:
        self.path = path
        self.schema = schema
        self._num_records = num_records
        self._nbytes = nbytes
        self._chunk_rows = chunk_rows
        self._chunk_size = chunk_size
        self._stats = stats
        self._cache: Any = None
        self._views: "weakref.WeakSet[ChunkView]" = weakref.WeakSet()
        self._sealed = False

    @property
    def num_records(self) -> int:
        return self._num_records

    @property
    def nbytes(self) -> int:
        return self._nbytes

    def bind_stats(self, stats: IOStats) -> None:
        """Point byte accounting at a backend's counter."""
        self._stats = stats

    def close(self) -> None:
        """Release the lazily opened arrays; access reopens them.

        With sanitizers armed the release is also *enforced*: every
        chunk view handed out so far is poisoned and the data is
        sealed, so both use-after-close on the block (DML014) and
        stale stored views (DML015) raise instead of silently
        re-mapping the files.
        """
        self._cache = None
        for view in list(self._views):
            view._poison()
        self._views = weakref.WeakSet()
        if sanitizers_armed():
            self._sealed = True

    def reopen(self) -> None:
        """Lift the sanitizer seal after an explicit ``backend.open()``."""
        self._sealed = False

    def _ensure_unsealed(self) -> None:
        if self._sealed:
            raise SanitizerViolation(
                f"block data at {self.path} is used after its backend "
                f"was closed; call backend.open() to reopen or move "
                f"the access before close() (DML014)"
            )

    # -- lazy array handles --------------------------------------------

    def _arrays(self) -> Any:
        if self._cache is None:
            if self.schema.kind == KIND_CSR:
                self._cache = (
                    np.load(os.path.join(self.path, "values.npy"), mmap_mode="r"),
                    np.load(os.path.join(self.path, "offsets.npy"), mmap_mode="r"),
                )
            elif self.schema.kind == KIND_DENSE:
                self._cache = [
                    np.load(
                        os.path.join(self.path, f"col_{j:03d}.npy"), mmap_mode="r"
                    )
                    for j in range(self.schema.width)
                ]
            else:
                self._cache = ()
        return self._cache

    # -- record iteration ----------------------------------------------

    def _charge(self, nbytes: int) -> None:
        if self._stats is not None:
            self._stats.record_read(nbytes)

    def _default_size(self) -> int:
        if self._chunk_size is not None:
            return self._chunk_size
        return default_chunk_size()

    def chunks(self, chunk_size: int | None = None) -> Iterator[Sequence[T]]:
        size = chunk_size if chunk_size is not None else self._default_size()
        if size < 1:
            raise ValueError(f"chunk size must be >= 1, got {size}")
        self._ensure_unsealed()
        armed = sanitizers_armed()
        for chunk, nbytes in self._chunks_with_sizes(size):
            self._ensure_unsealed()
            self._charge(nbytes)
            if armed:
                view = ChunkView(chunk)
                self._views.add(view)
                yield view
            else:
                yield chunk

    def _chunks_with_sizes(
        self, size: int
    ) -> Iterator[tuple[Sequence[T], int]]:
        if self.schema.kind == KIND_CSR:
            yield from self._csr_chunks(size)
        elif self.schema.kind == KIND_DENSE:
            yield from self._dense_chunks(size)
        else:
            yield from self._pickle_chunks(size)

    def _csr_chunks(self, size: int) -> Iterator[tuple[Sequence[T], int]]:
        values, offsets = self._arrays()
        for start in range(0, self._num_records, size):
            stop = min(start + size, self._num_records)
            offs = offsets[start : stop + 1]
            lo, hi = int(offs[0]), int(offs[-1])
            flat = values[lo:hi].tolist()
            rel = (offs - lo).tolist()
            records = [
                tuple(flat[rel[i] : rel[i + 1]]) for i in range(stop - start)
            ]
            yield records, INT_BYTES * (hi - lo)

    def _dense_chunks(self, size: int) -> Iterator[tuple[Sequence[T], int]]:
        columns = self._arrays()
        width = self.schema.width
        for start in range(0, self._num_records, size):
            stop = min(start + size, self._num_records)
            arr = np.column_stack([column[start:stop] for column in columns])
            records = [tuple(row) for row in arr.tolist()]
            yield records, FLOAT_BYTES * width * (stop - start)

    def _pickle_chunks(self, size: int) -> Iterator[tuple[Sequence[T], int]]:
        pending: list[T] = []
        for index in range(len(self._chunk_rows)):
            with open(
                os.path.join(self.path, f"chunk_{index:05d}.pkl"), "rb"
            ) as fh:
                pending.extend(pickle.load(fh))
            while len(pending) >= size:
                chunk, pending = pending[:size], pending[size:]
                yield chunk, records_nbytes(chunk)
        if pending:
            yield pending, records_nbytes(pending)

    # -- eager views ----------------------------------------------------

    def materialize(self) -> tuple[T, ...]:
        self._ensure_unsealed()
        records: list[T] = []
        for chunk, _nbytes in self._chunks_with_sizes(self._default_size()):
            records.extend(chunk)
        self._charge(self._nbytes)
        return tuple(records)

    def as_array(self, dtype: Any = float) -> Any:
        self._ensure_unsealed()
        self._charge(self._nbytes)
        if self.schema.kind == KIND_DENSE:
            columns = self._arrays()
            return np.column_stack([np.asarray(c) for c in columns]).astype(
                dtype, copy=False
            )
        records: list[T] = []
        for chunk, _nbytes in self._chunks_with_sizes(self._default_size()):
            records.extend(chunk)
        return np.asarray(records, dtype=dtype)


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------


class BlockBackend(ABC):
    """Creates and owns block record storage — the streaming ingest spine.

    Args:
        registry: I/O registry ingest writes and chunk reads are
            charged to; a private one is created when omitted.
        chunk_size: Default records-per-chunk for blocks this backend
            creates; ``None`` defers to ``DEMON_BLOCK_CHUNK``.
        counter_name: Counter name within ``registry``.
    """

    #: Short name used in specs and CLI flags ("memory" / "mmap").
    kind: str = ""

    def __init__(
        self,
        registry: IOStatsRegistry | None = None,
        chunk_size: int | None = None,
        counter_name: str = BACKEND_COUNTER,
    ) -> None:
        self.registry = registry if registry is not None else IOStatsRegistry()
        self._stats = self.registry.get(counter_name)
        self.chunk_size = chunk_size
        self._datas: "weakref.WeakSet[Any]" = weakref.WeakSet()
        self._closed = False
        # Ownership tag for the interleaving sanitizer: a backend built
        # in the parent must not be mutated from a worker task body.
        claim_ownership(self)

    @property
    def stats(self) -> IOStats:
        """The counter ingest and iteration are charged to."""
        return self._stats

    def resolved_chunk_size(self) -> int:
        """The chunk size blocks of this backend are written with."""
        return self.chunk_size if self.chunk_size is not None else default_chunk_size()

    def ingest(
        self,
        block_id: int,
        records: Iterable[T],
        label: str = "",
        metadata: dict[str, Any] | None = None,
    ) -> Block[T]:
        """Stream ``records`` into backend storage; return the handle.

        The stream is consumed exactly once; one logical write of the
        block's full size is charged.
        """
        if self._closed:
            raise RuntimeError(f"{self.kind} backend is closed")
        write_barrier(self, "ingest")
        data = self._create_data(records)
        self._datas.add(data)
        self._stats.record_write(data.nbytes)
        return Block(block_id, label=label, metadata=metadata, data=data)

    def adopt(self, block: Block[T]) -> Block[T]:
        """Re-home an existing block's records onto this backend.

        Blocks already owned by this backend are returned unchanged, so
        adoption is idempotent (restore paths call it unconditionally).
        """
        if block.data in self._datas:
            return block
        return self.ingest(
            block.block_id,
            block.data.materialize(),
            label=block.label,
            metadata=block.metadata,
        )

    def notify_expired(self, block_ids: Iterable[int]) -> int:
        """Hint that blocks slid out of every active window.

        The session spine calls this when the most-recent-window option
        retires a block — *after* any deferred maintenance on it has
        run, so backends may safely demote the block to a slower tier.
        The base implementation ignores the hint and reports zero
        blocks demoted; :class:`TieredBackend` overrides it to compress
        dense columns down to its cold tier.  Unknown and
        already-demoted ids must be ignored (the call is idempotent).
        """
        return 0

    def open(self) -> None:
        """Re-enable ingest after :meth:`close`.

        Sanitizer seals on the backend's block data are lifted too —
        reopening is the sanctioned way to use a handle again
        (typestate ``closed -> open``); already-poisoned chunk views
        stay poisoned because their buffers were really released.
        """
        for data in list(self._datas):
            reopen = getattr(data, "reopen", None)
            if reopen is not None:
                reopen()
        self._closed = False

    def close(self) -> None:
        """Release lazily opened resources; iteration reopens them."""
        for data in list(self._datas):
            release = getattr(data, "close", None)
            if release is not None:
                release()
        self._closed = True

    def __enter__(self) -> "BlockBackend":
        self.open()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    @abstractmethod
    def _create_data(self, records: Iterable[T]) -> Any:
        """Consume a record stream into this backend's storage."""

    @abstractmethod
    def spec(self) -> dict[str, Any]:
        """A picklable description sufficient to rebuild this backend."""


class InMemoryBackend(BlockBackend):
    """The historical in-memory storage, now metered and chunk-iterable."""

    kind = "memory"

    def _create_data(self, records: Iterable[T]) -> MeteredMemoryData[T]:
        return MeteredMemoryData(records, self._stats, self.chunk_size)

    def spec(self) -> dict[str, Any]:
        return {"kind": self.kind, "chunk_size": self.chunk_size}


class MmapBackend(BlockBackend):
    """On-disk columnar block storage with lazy memory-mapped reads.

    Args:
        root: Directory block subdirectories are created under; a fresh
            temporary directory is created when omitted.  Sharing a
            root across backends is safe — block directories are named
            by a monotonic sequence scanned from the root.
        registry / chunk_size / counter_name: see :class:`BlockBackend`.
    """

    kind = "mmap"

    def __init__(
        self,
        root: str | None = None,
        registry: IOStatsRegistry | None = None,
        chunk_size: int | None = None,
        counter_name: str = BACKEND_COUNTER,
    ) -> None:
        super().__init__(
            registry=registry, chunk_size=chunk_size, counter_name=counter_name
        )
        if root is None:
            root = tempfile.mkdtemp(prefix="demon-blocks-")
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self._seq = self._scan_seq()

    def _scan_seq(self) -> int:
        highest = 0
        for name in os.listdir(self.root):
            if name.startswith("b") and name[1:].isdigit():
                highest = max(highest, int(name[1:]))
        return highest

    def _create_data(self, records: Iterable[T]) -> MmapBlockData[T]:
        self._seq += 1
        path = os.path.join(self.root, f"b{self._seq:08d}")
        data = _write_block_dir(path, records, self.resolved_chunk_size())
        data.bind_stats(self._stats)
        return data

    def destroy(self) -> None:
        """Close the backend and delete its on-disk root."""
        self.close()
        shutil.rmtree(self.root, ignore_errors=True)

    def spec(self) -> dict[str, Any]:
        return {"kind": self.kind, "root": self.root, "chunk_size": self.chunk_size}


# ----------------------------------------------------------------------
# The tiered hot/cold lifecycle
# ----------------------------------------------------------------------

#: Block temperature tiers.
TIER_HOT = "hot"
TIER_COLD = "cold"

#: A cold block promotes back to the dense layout when it has served
#: more than this many compressed scans — repeated access means the MRW
#: expiry call was wrong about the block's temperature.
PROMOTE_AFTER_READS = 2

#: During demotion the lazily mapped dense arrays are re-opened every
#: this many packed chunks, so the resident set stays bounded by a few
#: chunks instead of the whole block's touched pages.
_DEMOTE_RECYCLE_CHUNKS = 16

#: Codec recorded for the byte-payload (dense float / pickle) layouts.
DEFLATE_CODEC = "deflate"


def _dense_file_names(schema: BlockSchema, chunk_rows: list[dict[str, int]]) -> list[str]:
    """The dense-layout files a block directory holds for ``schema``."""
    if schema.kind == KIND_CSR:
        return ["values.npy", "offsets.npy"]
    if schema.kind == KIND_DENSE:
        return [f"col_{j:03d}.npy" for j in range(schema.width)]
    return [f"chunk_{index:05d}.pkl" for index in range(len(chunk_rows))]


class TieredBlockData(MmapBlockData[T]):
    """Block data that can live dense (hot) or compressed (cold).

    Hot blocks are plain :class:`MmapBlockData` directories.
    :meth:`demote` compacts the dense columns into one ``packed.bin``
    of per-chunk codec blobs (delta+varint for CSR offset columns,
    raw ``uint16`` for value runs that fit it — they are unsorted, so
    delta-varint buys no bytes there and raw decodes branch-free —
    deflate for float rows and pickled chunks), rewrites ``meta.json``
    with the tier, codec, and packed chunk index, and deletes the dense
    files; :meth:`promote` is the exact inverse.  Readers never notice:
    chunk boundaries and logical byte charges are identical in both
    tiers, so :class:`~repro.storage.iostats.IOStats` and checkpoint
    bytes stay backend- and tier-independent.

    Cold reads go through one lazily opened ``uint8`` memory map of
    ``packed.bin`` that participates in the same close/reopen/seal
    lifecycle as the dense handles (DML014/DML015).
    """

    __slots__ = ("tier", "codec", "_packed_rows", "_cold_reads", "_promoter")

    def __init__(
        self,
        path: str,
        schema: BlockSchema,
        num_records: int,
        nbytes: int,
        chunk_rows: list[dict[str, int]],
        chunk_size: int | None = None,
        stats: IOStats | None = None,
        tier: str = TIER_HOT,
        codec: str | None = None,
        packed_rows: list[dict[str, Any]] | None = None,
    ) -> None:
        super().__init__(
            path=path,
            schema=schema,
            num_records=num_records,
            nbytes=nbytes,
            chunk_rows=chunk_rows,
            chunk_size=chunk_size,
            stats=stats,
        )
        self.tier = tier
        self.codec = codec
        self._packed_rows = packed_rows or []
        self._cold_reads = 0
        self._promoter: Any = None

    @classmethod
    def from_mmap(cls, data: MmapBlockData[T]) -> "TieredBlockData[T]":
        """Wrap a freshly written dense block directory (hot tier)."""
        return cls(
            path=data.path,
            schema=data.schema,
            num_records=data._num_records,
            nbytes=data._nbytes,
            chunk_rows=data._chunk_rows,
            chunk_size=data._chunk_size,
            stats=data._stats,
        )

    # -- tier bookkeeping ----------------------------------------------

    @property
    def packed_path(self) -> str:
        return os.path.join(self.path, "packed.bin")

    def compressed_nbytes(self) -> int:
        """Bytes of ``packed.bin`` currently holding this block (0 if hot)."""
        if self.tier != TIER_COLD:
            return 0
        return sum(
            int(span[1])
            for entry in self._packed_rows
            for span in entry["spans"]
        )

    def _write_meta(self) -> None:
        meta: dict[str, Any] = {
            "format": BLOCK_DIR_FORMAT,
            "schema": self.schema.to_dict(),
            "num_records": self._num_records,
            "nbytes": self._nbytes,
            "chunk_size": self._chunk_size,
            "chunks": self._chunk_rows,
            "tier": self.tier,
        }
        if self.tier == TIER_COLD:
            meta["codec"] = self.codec
            meta["packed"] = self._packed_rows
        atomic_json(os.path.join(self.path, "meta.json"), meta)

    # -- demotion (hot -> cold) ----------------------------------------

    def demote(self, int_codec: str = "delta-varint") -> int:
        """Compact the dense layout to compressed form; idempotent.

        Returns the number of dense bytes removed from disk (0 when the
        block was already cold).  Tier maintenance is *not* charged to
        the backend's I/O counter: logical reads and writes are
        placement-independent, and a background compaction is neither.
        """
        from repro.storage.codecs import deflate, resolve_codec

        if self.tier == TIER_COLD:
            return 0
        blocking_call("demote")
        codec_name = int_codec if self.schema.kind == KIND_CSR else DEFLATE_CODEC
        codec = resolve_codec(int_codec) if self.schema.kind == KIND_CSR else None
        dense_files = [
            os.path.join(self.path, name)
            for name in _dense_file_names(self.schema, self._chunk_rows)
        ]
        reclaimed = sum(os.path.getsize(f) for f in dense_files if os.path.exists(f))
        size = self._default_size()
        entries: list[dict[str, Any]] = []
        offset = 0
        # Crash-safe ordering: publish packed.bin atomically, flip the
        # in-memory tier, publish meta.json atomically, and only then
        # delete the dense files.  A crash at any point leaves either a
        # fully hot block (meta still dense, orphaned packed scratch) or
        # a fully cold block (meta packed, orphaned dense files) — both
        # readable; orphans are overwritten by the next transition.
        with atomic_writer(self.packed_path) as out:
            if self.schema.kind == KIND_CSR:
                offset = self._demote_csr(out, codec, size, entries)
            elif self.schema.kind == KIND_DENSE:
                offset = self._demote_dense(out, deflate, size, entries)
            else:
                offset = self._demote_pickle(out, deflate, entries)
        self._cache = None
        self.tier = TIER_COLD
        self.codec = codec_name
        self._packed_rows = entries
        self._cold_reads = 0
        self._write_meta()
        for f in dense_files:
            if os.path.exists(f):
                os.remove(f)
        return reclaimed

    def _demote_csr(
        self,
        out: Any,
        codec: Any,
        size: int,
        entries: list[dict[str, Any]],
    ) -> int:
        from repro.storage.codecs import resolve_codec

        offset = 0
        for index, start in enumerate(range(0, self._num_records, size)):
            values, offsets = self._arrays()
            stop = min(start + size, self._num_records)
            offs = np.asarray(offsets[start : stop + 1], dtype=np.int64)
            vals = np.asarray(values[int(offs[0]) : int(offs[-1])], dtype=np.int64)
            # Chunk-local cumulative offsets, not per-record lengths:
            # the codec's delta stream is then exactly the (non-negative)
            # lengths, and decoding hands back ready-to-slice offsets
            # without a second cumsum on the read path.
            offsets_blob = codec.encode(offs[1:] - offs[0])
            # Value runs are unsorted (they restart at every record),
            # so delta-varint earns nothing over two raw bytes when the
            # ids fit uint16 — and raw decodes with one frombuffer.
            vcodec_name = None
            if len(vals) == 0 or (
                int(vals.min()) >= 0 and int(vals.max()) <= 0xFFFF
            ):
                vcodec_name = "raw-u16"
            vcodec = resolve_codec(vcodec_name) if vcodec_name else codec
            values_blob = vcodec.encode(vals)
            out.write(offsets_blob)
            out.write(values_blob)
            entry: dict[str, Any] = {
                "count": stop - start,
                "values": int(len(vals)),
                "spans": [
                    [offset, len(offsets_blob)],
                    [offset + len(offsets_blob), len(values_blob)],
                ],
            }
            if vcodec_name:
                entry["vcodec"] = vcodec_name
            entries.append(entry)
            offset += len(offsets_blob) + len(values_blob)
            if (index + 1) % _DEMOTE_RECYCLE_CHUNKS == 0:
                self._cache = None
        return offset

    def _demote_dense(
        self,
        out: Any,
        deflate: Any,
        size: int,
        entries: list[dict[str, Any]],
    ) -> int:
        offset = 0
        width = self.schema.width
        for index, start in enumerate(range(0, self._num_records, size)):
            columns = self._arrays()
            stop = min(start + size, self._num_records)
            rows = np.column_stack(
                [np.asarray(column[start:stop]) for column in columns]
            ).astype(np.float64, copy=False)
            blob = deflate(rows.tobytes())
            out.write(blob)
            entries.append({"count": stop - start, "spans": [[offset, len(blob)]]})
            offset += len(blob)
            if (index + 1) % _DEMOTE_RECYCLE_CHUNKS == 0:
                self._cache = None
        return offset

    def _demote_pickle(
        self, out: Any, deflate: Any, entries: list[dict[str, Any]]
    ) -> int:
        offset = 0
        for index, row in enumerate(self._chunk_rows):
            with open(
                os.path.join(self.path, f"chunk_{index:05d}.pkl"), "rb"
            ) as fh:
                raw = fh.read()
            blob = deflate(raw)
            out.write(blob)
            entries.append({"count": row["count"], "spans": [[offset, len(blob)]]})
            offset += len(blob)
        return offset

    # -- promotion (cold -> hot) ---------------------------------------

    def promote(self) -> int:
        """Rebuild the dense layout from ``packed.bin``; idempotent.

        Returns the compressed bytes removed (0 when already hot).  The
        rebuilt dense files are byte-identical to the pre-demotion ones
        (codecs round-trip exactly; pickle chunks inflate to their
        original bytes), so a demote/promote cycle is invisible to
        checkpoints and the parallel shard path.
        """
        if self.tier != TIER_COLD:
            return 0
        blocking_call("promote")
        freed = self.compressed_nbytes()
        # Mirror of demote's crash-safe ordering: dense files are
        # published atomically first, meta.json flips the block hot, and
        # packed.bin is removed last (an orphaned packed.bin under a hot
        # meta is unreferenced and inert).
        if self.schema.kind == KIND_CSR:
            self._promote_csr()
        elif self.schema.kind == KIND_DENSE:
            self._promote_dense()
        else:
            self._promote_pickle()
        self._cache = None
        self.tier = TIER_HOT
        self.codec = None
        self._packed_rows = []
        self._cold_reads = 0
        self._write_meta()
        if os.path.exists(self.packed_path):
            os.remove(self.packed_path)
        return freed

    def _promote_csr(self) -> None:
        from repro.storage.codecs import resolve_codec

        codec = resolve_codec(self.codec or "delta-varint")
        packed = self._packed()
        length_parts: list[np.ndarray] = []
        value_parts: list[np.ndarray] = []
        for entry in self._packed_rows:
            (l_off, l_len), (v_off, v_len) = entry["spans"]
            local = codec.decode(packed[l_off : l_off + l_len], int(entry["count"]))
            length_parts.append(np.diff(local, prepend=0))
            vcodec = (
                resolve_codec(entry["vcodec"]) if "vcodec" in entry else codec
            )
            value_parts.append(
                vcodec.decode(packed[v_off : v_off + v_len], int(entry["values"]))
            )
        lengths = (
            np.concatenate(length_parts)
            if length_parts
            else np.empty(0, dtype=np.int64)
        )
        values = (
            np.concatenate(value_parts)
            if value_parts
            else np.empty(0, dtype=np.int64)
        )
        offsets = np.zeros(self._num_records + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        self._cache = None
        atomic_save(os.path.join(self.path, "values.npy"), values)
        atomic_save(os.path.join(self.path, "offsets.npy"), offsets)

    def _promote_dense(self) -> None:
        from repro.storage.codecs import inflate

        packed = self._packed()
        width = self.schema.width
        parts: list[np.ndarray] = []
        for entry in self._packed_rows:
            (off, length) = entry["spans"][0]
            rows = np.frombuffer(
                inflate(packed[off : off + length]), dtype=np.float64
            ).reshape(int(entry["count"]), width)
            parts.append(rows)
        matrix = (
            np.concatenate(parts)
            if parts
            else np.empty((0, width), dtype=np.float64)
        )
        self._cache = None
        for j in range(width):
            atomic_save(
                os.path.join(self.path, f"col_{j:03d}.npy"), matrix[:, j].copy()
            )

    def _promote_pickle(self) -> None:
        from repro.storage.codecs import inflate

        packed = self._packed()
        for index, entry in enumerate(self._packed_rows):
            (off, length) = entry["spans"][0]
            raw = inflate(packed[off : off + length])
            self._cache = None
            with atomic_writer(
                os.path.join(self.path, f"chunk_{index:05d}.pkl")
            ) as fh:
                fh.write(raw)

    # -- cold reads ----------------------------------------------------

    def _packed(self) -> np.ndarray:
        """The lazily opened ``uint8`` map of ``packed.bin``."""
        if self._cache is None:
            if os.path.getsize(self.packed_path) == 0:
                self._cache = np.empty(0, dtype=np.uint8)
            else:
                self._cache = np.memmap(self.packed_path, dtype=np.uint8, mode="r")
        return self._cache

    def _arrays(self) -> Any:
        if self.tier == TIER_COLD:
            return self._packed()
        return super()._arrays()

    def _note_cold_read(self) -> None:
        """Count one compressed scan; promote past the threshold."""
        self._cold_reads += 1
        if self._promoter is not None and self._cold_reads > PROMOTE_AFTER_READS:
            self._promoter(self)

    def chunks(self, chunk_size: int | None = None) -> Iterator[Sequence[T]]:
        if self.tier == TIER_COLD:
            self._note_cold_read()
        return super().chunks(chunk_size)

    def materialize(self) -> tuple[T, ...]:
        if self.tier == TIER_COLD:
            self._note_cold_read()
        return super().materialize()

    def _chunks_with_sizes(self, size: int) -> Iterator[tuple[Sequence[T], int]]:
        if self.tier != TIER_COLD:
            yield from super()._chunks_with_sizes(size)
            return
        pending: list[T] = []
        pending_nbytes = 0
        for records, nbytes in self._cold_record_chunks():
            if not pending and len(records) == size:
                # Packed chunks line up with the requested size (the
                # common case: both use the block's default), so the
                # charge comes straight from the decode metadata
                # instead of an O(records) re-walk.
                yield records, nbytes
                continue
            pending.extend(records)
            pending_nbytes += nbytes
            while len(pending) >= size:
                chunk, pending = pending[:size], pending[size:]
                chunk_nbytes = records_nbytes(chunk)
                pending_nbytes -= chunk_nbytes
                yield chunk, chunk_nbytes
        if pending:
            yield pending, pending_nbytes

    def _cold_record_chunks(self) -> Iterator[tuple[list[T], int]]:
        """Decode the packed chunks one at a time, never the whole block."""
        from repro.storage.codecs import inflate, resolve_codec

        if self.schema.kind == KIND_CSR:
            codec = resolve_codec(self.codec or "delta-varint")
            for entry in self._packed_rows:
                packed = self._packed()
                (l_off, l_len), (v_off, v_len) = entry["spans"]
                count = int(entry["count"])
                # The offsets blob decodes straight to chunk-local
                # cumulative offsets; only the leading zero is missing.
                offs = codec.decode(packed[l_off : l_off + l_len], count)
                vcodec = (
                    resolve_codec(entry["vcodec"])
                    if "vcodec" in entry
                    else codec
                )
                vals = vcodec.decode(
                    packed[v_off : v_off + v_len], int(entry["values"])
                )
                flat = vals.tolist()
                rel_list = [0] + offs.tolist()
                yield (
                    [
                        tuple(flat[rel_list[i] : rel_list[i + 1]])
                        for i in range(count)
                    ],
                    INT_BYTES * int(entry["values"]),
                )
        elif self.schema.kind == KIND_DENSE:
            width = self.schema.width
            for entry in self._packed_rows:
                packed = self._packed()
                (off, length) = entry["spans"][0]
                rows = np.frombuffer(
                    inflate(packed[off : off + length]), dtype=np.float64
                ).reshape(int(entry["count"]), width)
                yield (
                    [tuple(row) for row in rows.tolist()],
                    FLOAT_BYTES * width * int(entry["count"]),
                )
        else:
            for entry in self._packed_rows:
                packed = self._packed()
                (off, length) = entry["spans"][0]
                records = pickle.loads(inflate(packed[off : off + length]))
                yield records, records_nbytes(records)

    def as_array(self, dtype: Any = float) -> Any:
        if self.tier != TIER_COLD:
            return super().as_array(dtype)
        self._note_cold_read()
        if self.tier != TIER_COLD:  # the read itself tripped a promotion
            return super().as_array(dtype)
        self._ensure_unsealed()
        self._charge(self._nbytes)
        records: list[T] = []
        for chunk, _nbytes in self._cold_record_chunks():
            records.extend(chunk)
        return np.asarray(records, dtype=dtype)


def load_block_data(path: str, stats: IOStats | None = None) -> MmapBlockData[Any]:
    """Rebuild block data from an on-disk block directory's ``meta.json``.

    Hot (or plain mmap) directories come back as :class:`MmapBlockData`;
    directories carrying a cold tier come back as
    :class:`TieredBlockData` reading ``packed.bin`` in place — this is
    how parallel workers reopen compressed columns zero-copy.
    """
    with open(os.path.join(path, "meta.json"), "r", encoding="utf-8") as fh:
        meta = json.load(fh)
    schema = BlockSchema.from_dict(meta["schema"])
    common = dict(
        path=path,
        schema=schema,
        num_records=int(meta["num_records"]),
        nbytes=int(meta["nbytes"]),
        chunk_rows=meta.get("chunks", []),
        chunk_size=meta.get("chunk_size"),
        stats=stats,
    )
    if meta.get("tier", TIER_HOT) == TIER_COLD:
        return TieredBlockData(
            tier=TIER_COLD,
            codec=meta.get("codec"),
            packed_rows=meta.get("packed", []),
            **common,
        )
    return MmapBlockData(**common)


class TieredBackend(MmapBackend):
    """Mmap storage with a hot/cold block lifecycle.

    Freshly ingested blocks are hot: plain dense columnar directories.
    :meth:`notify_expired` — driven by the session when a block leaves
    the most recent window — demotes blocks to the cold tier
    (``packed.bin`` of codec blobs, dense files deleted); a cold block
    that keeps getting scanned promotes itself back on access.  Logical
    I/O accounting is tier-independent, so models, telemetry (modulo
    ``storage.tier.*``), and checkpoint bytes match the other backends
    exactly regardless of where each block currently lives.

    GEMM's disk-resident model spill rides the same policy: the session
    routes the vault through :attr:`spill_codec` when the backend
    carries one (see ``ModelVault.enable_codec``).

    Args:
        int_codec: Codec for integer CSR columns (``"delta-varint"`` or
            any registered :class:`~repro.storage.codecs.ColumnCodec`).
        root / registry / chunk_size / counter_name: see
            :class:`MmapBackend`.
    """

    kind = "tiered"

    #: Codec the session routes GEMM's vault spill through.
    spill_codec = DEFLATE_CODEC

    def __init__(
        self,
        root: str | None = None,
        registry: IOStatsRegistry | None = None,
        chunk_size: int | None = None,
        counter_name: str = BACKEND_COUNTER,
        int_codec: str = "delta-varint",
    ) -> None:
        super().__init__(
            root=root,
            registry=registry,
            chunk_size=chunk_size,
            counter_name=counter_name,
        )
        self.int_codec = int_codec
        self.telemetry: Any = None
        self._by_id: "weakref.WeakValueDictionary[int, TieredBlockData[Any]]" = (
            weakref.WeakValueDictionary()
        )

    def _create_data(self, records: Iterable[T]) -> TieredBlockData[T]:
        data = TieredBlockData.from_mmap(super()._create_data(records))
        data._promoter = self._on_promote
        self._datas.add(data)
        return data

    def ingest(
        self,
        block_id: int,
        records: Iterable[T],
        label: str = "",
        metadata: dict[str, Any] | None = None,
    ) -> Block[T]:
        block = super().ingest(block_id, records, label=label, metadata=metadata)
        # The id index is shared with the promoter callback; keep the
        # update inside a critical region so the sanitizer (and DML024)
        # can check that nothing blocking runs while it is held.
        with critical_section("tier-index"):
            self._by_id[block.block_id] = block.data
        return block

    # -- the tiering policy --------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        if self.telemetry is not None and n:
            self.telemetry.increment(name, n)

    def demote_block(self, block_id: int) -> bool:
        """Compact one block to the cold tier; ``False`` if unknown/cold."""
        data = self._by_id.get(block_id)
        if data is None or data.tier == TIER_COLD:
            return False
        reclaimed = data.demote(self.int_codec)
        self._count("storage.tier.demotions")
        self._count("storage.tier.compressed_bytes", data.compressed_nbytes())
        self._count("storage.tier.reclaimed_bytes", reclaimed)
        return True

    def notify_expired(self, block_ids: Iterable[int]) -> int:
        """Demote every listed block; returns how many actually moved.

        The session calls this as blocks fall out of the most recent
        window — the MRW expiry *is* the temperature signal.
        """
        return sum(1 for block_id in block_ids if self.demote_block(block_id))

    def promote_block(self, block_id: int) -> bool:
        """Rebuild one block's dense layout; ``False`` if unknown/hot."""
        data = self._by_id.get(block_id)
        if data is None or data.tier != TIER_COLD:
            return False
        self._on_promote(data)
        return True

    def _on_promote(self, data: TieredBlockData[Any]) -> None:
        freed = data.promote()
        if freed:
            self._count("storage.tier.promotions")

    def tier_stats(self) -> dict[str, int]:
        """Live tier occupancy: block counts and compressed bytes."""
        hot = cold = compressed = 0
        for data in list(self._datas):
            if getattr(data, "tier", TIER_HOT) == TIER_COLD:
                cold += 1
                compressed += data.compressed_nbytes()
            else:
                hot += 1
        return {
            "hot_blocks": hot,
            "cold_blocks": cold,
            "compressed_bytes": compressed,
        }

    def spec(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "root": self.root,
            "chunk_size": self.chunk_size,
            "int_codec": self.int_codec,
        }


# ----------------------------------------------------------------------
# Backend resolution (specs, names, the ambient environment toggle)
# ----------------------------------------------------------------------

#: Lazily created process-wide backend behind ``DEMON_BLOCK_BACKEND``.
_AMBIENT: dict[str, BlockBackend] = {}


def backend_from_spec(spec: dict[str, Any]) -> BlockBackend:
    """Rebuild a backend from :meth:`BlockBackend.spec` output."""
    kind = spec.get("kind")
    chunk_size = spec.get("chunk_size")
    if kind == InMemoryBackend.kind:
        return InMemoryBackend(chunk_size=chunk_size)
    if kind == TieredBackend.kind:
        return TieredBackend(
            root=spec.get("root"),
            chunk_size=chunk_size,
            int_codec=spec.get("int_codec", "delta-varint"),
        )
    if kind == MmapBackend.kind:
        return MmapBackend(root=spec.get("root"), chunk_size=chunk_size)
    raise ValueError(f"unknown block backend kind {kind!r}")


def ambient_backend_name() -> str | None:
    """Parse and validate ``DEMON_BLOCK_BACKEND`` without side effects.

    Returns the normalized backend kind, or ``None`` for the default
    in-memory mode.  Entry points call this at argument-parse time so a
    typo in the environment fails immediately with an actionable
    message (matching ``DEMON_WORKERS`` / ``DEMON_BLOCK_CHUNK``)
    instead of deep inside the first ingest.
    """
    name = os.environ.get("DEMON_BLOCK_BACKEND", "").strip().lower()
    if name in ("", InMemoryBackend.kind):
        return None
    if name not in (MmapBackend.kind, TieredBackend.kind):
        raise ValueError(
            f"DEMON_BLOCK_BACKEND must be 'memory', 'mmap', or 'tiered', "
            f"got {name!r}"
        )
    return name


def ambient_backend() -> BlockBackend | None:
    """The process-wide backend selected by ``DEMON_BLOCK_BACKEND``.

    Returns ``None`` in the default in-memory mode, where plain blocks
    need no backend at all; the mmap mode shares one backend rooted in
    a temporary directory that is removed at interpreter exit.
    """
    name = ambient_backend_name()
    if name is None:
        return None
    backend = _AMBIENT.get(name)
    if backend is None:
        root = tempfile.mkdtemp(prefix="demon-ambient-blocks-")
        backend = (
            TieredBackend(root=root)
            if name == TieredBackend.kind
            else MmapBackend(root=root)
        )
        # destroy() closes every live mmap view before removing the
        # tree — registering a bare rmtree would delete the files out
        # from under still-open handles at interpreter exit
        # (close-before-delete, DML014).  The registration is guarded
        # on the creating pid: forked workers inherit both the
        # _AMBIENT entry and the atexit hook, and a child running the
        # parent's destroy would rmtree block directories the parent
        # (and its sibling workers) are still reading.
        atexit.register(_destroy_if_owner, backend, os.getpid())
        _AMBIENT[name] = backend
    return backend


def _destroy_if_owner(backend: MmapBackend, owner_pid: int) -> None:
    """Run an ambient backend's atexit destroy only in its creator."""
    if os.getpid() == owner_pid:
        backend.destroy()


def resolve_backend(
    value: "BlockBackend | str | dict[str, Any] | None",
) -> BlockBackend | None:
    """Normalize a backend knob: instance, name, spec, or ``None``.

    ``None`` defers to the ambient environment toggle (and stays
    ``None`` in the default in-memory mode).
    """
    if value is None:
        return ambient_backend()
    if isinstance(value, BlockBackend):
        return value
    if isinstance(value, str):
        if value == InMemoryBackend.kind:
            return InMemoryBackend()
        if value == TieredBackend.kind:
            return TieredBackend()
        if value == MmapBackend.kind:
            return MmapBackend()
        raise ValueError(f"unknown block backend name {value!r}")
    if isinstance(value, dict):
        return backend_from_spec(value)
    raise TypeError(f"cannot resolve a block backend from {value!r}")
