"""Atomic file publication for the storage engine (DML022's good path).

Every file the storage layer publishes — block ``meta.json``, dense
``.npy`` columns, pickle chunks, the tiered ``packed.bin`` — is written
with the same two-step discipline: stream into a scratch path next to
the destination, then :func:`os.replace` it into place.  ``os.replace``
is atomic on POSIX (and on Windows within a volume), so a concurrent
reader — another process sharing the backend root, a forked worker
reopening blocks by path, or a crashed-and-restarted session — observes
either the old complete file or the new complete file, never a torn
one.

The scratch name embeds the writing pid (``meta.json.tmp-1234``): two
processes racing on one destination each publish a complete file and
the last replace wins, which is exactly the single-writer discipline
the interleaving sanitizer (:func:`repro.contracts.write_barrier`)
asserts dynamically.  A scratch file orphaned by a crash is inert — the
``tmp`` infix keeps it out of every reader's path and out of demonlint
DML022's definition of a publication.

Durability note: the helpers guarantee *atomicity*, not *durability* —
no ``fsync`` is issued, matching the engine's logical-I/O accounting
(tier maintenance must not be charged physical sync stalls).  Callers
needing power-failure durability can fsync the returned path.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterator
from contextlib import contextmanager
from typing import IO, Any

import numpy as np


def _scratch_path(path: str) -> str:
    """The pid-suffixed temp path a publication of ``path`` streams to."""
    return f"{path}.tmp-{os.getpid()}"


@contextmanager
def atomic_writer(
    path: str, mode: str = "wb", encoding: str | None = None
) -> Iterator[IO[Any]]:
    """Open a scratch file; publish it to ``path`` on clean exit.

    On any exception the scratch file is removed and the destination is
    left untouched — a failed write is invisible, not torn.
    """
    scratch = _scratch_path(path)
    fh = open(scratch, mode, encoding=encoding)
    try:
        yield fh
    except BaseException:
        fh.close()
        try:
            os.remove(scratch)
        except OSError:
            pass
        raise
    fh.close()
    os.replace(scratch, path)


def atomic_save(path: str, array: np.ndarray) -> None:
    """Publish one array as ``path`` (.npy format) atomically.

    ``np.save`` is handed the open scratch *file object* — giving it a
    path would append ``.npy`` and dodge the replace step.
    """
    with atomic_writer(path) as fh:
        np.save(fh, array)


def atomic_json(path: str, obj: Any) -> None:
    """Publish one JSON document at ``path`` atomically."""
    with atomic_writer(path, "w", encoding="utf-8") as fh:
        json.dump(obj, fh)


def atomic_bytes(path: str, payload: bytes) -> None:
    """Publish one opaque byte payload at ``path`` atomically."""
    with atomic_writer(path) as fh:
        fh.write(payload)
