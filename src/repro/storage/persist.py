"""Disk-resident model storage for GEMM's non-current models (§3.2.3).

The paper: "the collection of models except [the current one] can be
stored on disk and retrieved when necessary.  Thus main memory is not a
limitation as long as a single model fits in-memory ... the additional
disk space required for these models is negligible."

:class:`ModelVault` simulates that disk: it stores serialized model
bytes keyed by an arbitrary hashable key, charging every store and
fetch to an :class:`~repro.storage.iostats.IOStats` counter so
benchmarks can report the (small) model footprint next to the (large)
data footprint.  GEMM accepts a vault and then keeps only the current
model and the empty model live in memory.

Serialization uses :mod:`pickle`; an optional size budget rejects
models that would not plausibly "fit on the disk" of the simulation.

A vault can additionally deflate its stored blobs
(:meth:`ModelVault.enable_codec`): a session running on the tiered
block backend lends the backend's spill codec to its vault so
disk-resident models ride the same compression discipline as cold
blocks.  Compression is transparent to byte accounting — stores and
fetches keep charging the *logical* (pickled) size, so telemetry and
checkpoint sizes stay identical whether or not a codec is enabled;
only the budget is checked against the (smaller) stored bytes.
"""

from __future__ import annotations

import pickle
from typing import Any, Hashable

from repro.storage.iostats import IOStats, IOStatsRegistry


class VaultFullError(RuntimeError):
    """Raised when a put would exceed the vault's size budget."""


#: Namespaces claimed via :func:`register_vault_namespace`.  Keys are
#: the namespace strings; values name the registering module so a
#: collision error can say who got there first.
_VAULT_NAMESPACES: dict[str, str] = {}


def register_vault_namespace(namespace: str) -> str:
    """Claim a key namespace for :class:`ModelVault` keys.

    Every component that stores into a (potentially shared) vault must
    root its keys in a registered namespace string — keys are tuples
    ``(namespace, ...)`` — so two subsystems checkpointing into the
    same vault can never collide silently.  demonlint rule DML011
    enforces the convention statically; this function is the runtime
    half: it records the claim and returns the namespace unchanged, so
    the idiomatic use is::

        SPILL_NAMESPACE = register_vault_namespace("gemm-spill")

    Re-registering the same namespace from the same module is a no-op
    (modules may be reloaded); a second *different* module claiming the
    same string raises ``ValueError``.
    """
    import inspect

    frame = inspect.currentframe()
    caller = "<unknown>"
    if frame is not None and frame.f_back is not None:
        caller = frame.f_back.f_globals.get("__name__", "<unknown>")
    owner = _VAULT_NAMESPACES.get(namespace)
    if owner is not None and owner != caller:
        raise ValueError(
            f"vault namespace {namespace!r} already registered by {owner}"
        )
    _VAULT_NAMESPACES[namespace] = caller
    return namespace


def registered_vault_namespaces() -> dict[str, str]:
    """Snapshot of claimed namespaces mapped to their owning module."""
    return dict(_VAULT_NAMESPACES)


class ModelVault:
    """A byte-accounted store of serialized models.

    Args:
        registry: I/O registry to charge stores/fetches to; a private
            one is created when omitted.
        counter_name: Counter name within the registry.
        budget_bytes: Optional total-size budget; ``None`` = unbounded.
        codec: Optional byte codec name for stored blobs (currently
            ``"deflate"``); equivalent to calling :meth:`enable_codec`.
    """

    def __init__(
        self,
        registry: IOStatsRegistry | None = None,
        counter_name: str = "model_vault",
        budget_bytes: int | None = None,
        codec: str | None = None,
    ):
        self.registry = registry if registry is not None else IOStatsRegistry()
        self._stats = self.registry.get(counter_name)
        self.budget_bytes = budget_bytes
        self._slots: dict[Hashable, bytes] = {}
        #: Logical (pickled) size per key — what accounting reports.
        self._logical: dict[Hashable, int] = {}
        #: Keys whose stored blob is codec-encoded.
        self._encoded: set[Hashable] = set()
        self._codec: str | None = None
        if codec is not None:
            self.enable_codec(codec)

    @property
    def codec(self) -> str | None:
        """Active byte codec name, or ``None`` when storing raw pickles."""
        return self._codec

    def enable_codec(self, name: str) -> None:
        """Deflate-store future puts; existing slots are left as-is.

        Enabling a codec never changes what callers observe: ``get``
        returns the same objects, and every charge is the logical
        pickled size.  Only the resident footprint (and therefore how
        much fits under ``budget_bytes``) shrinks.
        """
        if name != "deflate":
            raise ValueError(
                f"unknown vault codec {name!r} (supported: 'deflate')"
            )
        self._codec = name

    @property
    def stats(self) -> IOStats:
        """The counter stores and fetches are charged to."""
        return self._stats

    def __contains__(self, key: Hashable) -> bool:
        return key in self._slots

    def __len__(self) -> int:
        return len(self._slots)

    def keys(self) -> list[Hashable]:
        """All stored keys."""
        return list(self._slots)

    def total_nbytes(self) -> int:
        """Total logical (pickled) bytes currently stored."""
        return sum(self._logical.values())

    def stored_nbytes(self) -> int:
        """Total resident bytes — less than :meth:`total_nbytes` when a
        codec is active and compressing."""
        return sum(len(blob) for blob in self._slots.values())

    def nbytes(self, key: Hashable) -> int:
        """Logical (pickled) size of one stored model."""
        return self._logical[key]

    def put(self, key: Hashable, model: Any) -> int:
        """Serialize and store a model; returns its logical byte size.

        Overwrites any previous model under the same key.  With a codec
        enabled the blob is stored deflated when that is smaller, but
        the charge and return value remain the pickled size.

        Raises:
            VaultFullError: if the budget would be exceeded.
        """
        blob = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
        logical = len(blob)
        stored = blob
        encoded = False
        if self._codec is not None:
            from repro.storage.codecs import deflate

            packed = deflate(blob)
            if len(packed) < len(blob):
                stored = packed
                encoded = True
        if self.budget_bytes is not None:
            projected = (
                self.stored_nbytes()
                - len(self._slots.get(key, b""))
                + len(stored)
            )
            if projected > self.budget_bytes:
                raise VaultFullError(
                    f"storing {len(stored)} bytes under {key!r} would exceed "
                    f"the vault budget of {self.budget_bytes} bytes"
                )
        self._slots[key] = stored
        self._logical[key] = logical
        if encoded:
            self._encoded.add(key)
        else:
            self._encoded.discard(key)
        self._stats.record_write(logical)
        return logical

    def get(self, key: Hashable) -> Any:
        """Fetch and deserialize one model (a fresh private copy)."""
        blob = self._slots[key]
        if key in self._encoded:
            from repro.storage.codecs import inflate

            blob = inflate(blob)
        self._stats.record_read(len(blob))
        return pickle.loads(blob)

    def delete(self, key: Hashable) -> None:
        """Drop one stored model (idempotent)."""
        self._slots.pop(key, None)
        self._logical.pop(key, None)
        self._encoded.discard(key)

    def retain_only(self, keys) -> None:
        """Drop every stored model whose key is not in ``keys``."""
        wanted = set(keys)
        for key in list(self._slots):
            if key not in wanted:
                del self._slots[key]
                self._logical.pop(key, None)
                self._encoded.discard(key)


def save_model(model: Any) -> bytes:
    """Serialize one model to bytes (convenience wrapper)."""
    return pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)


def load_model(blob: bytes) -> Any:
    """Deserialize one model from bytes."""
    return pickle.loads(blob)
