"""I/O accounting for the simulated block store.

The DEMON paper argues for ECUT/ECUT+ primarily in terms of *bytes
fetched from disk*: the TID-lists of the items in an itemset are one to
two orders of magnitude smaller than the full transactional dataset.
Our reproduction runs in memory, so we meter every logical read and
write through an :class:`IOStats` counter.  Benchmarks report both
wall-clock time and bytes touched, which lets us check the paper's
I/O-shape claims independently of Python-level constant factors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from types import TracebackType


class Stopwatch:
    """The sanctioned wall-clock meter (demonlint rule DML004).

    Algorithm 3.1 splits every GEMM window slide into the response-time
    critical update and off-line work; that split is only measurable if
    every timed span in ``src/repro`` flows through one instrumented
    place.  This class is that place: all maintainer and report
    plumbing meters spans through a ``Stopwatch``, and demonlint bans
    direct ``time.*``/``datetime.*`` wall-clock reads everywhere except
    this module and ``benchmarks/``.

    Usable as a context manager or via explicit :meth:`start`/:meth:`stop`;
    repeated start/stop cycles accumulate into :attr:`seconds`.
    """

    __slots__ = ("seconds", "_started")

    def __init__(self) -> None:
        #: Total seconds accumulated over all completed spans.
        self.seconds = 0.0
        self._started: float | None = None

    def start(self) -> "Stopwatch":
        """Begin a span; returns self so ``Stopwatch().start()`` chains."""
        if self._started is not None:
            raise RuntimeError("Stopwatch is already running")
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        """End the span and return the total accumulated seconds."""
        if self._started is None:
            raise RuntimeError("Stopwatch.stop() without a matching start()")
        self.seconds += time.perf_counter() - self._started
        self._started = None
        return self.seconds

    @property
    def running(self) -> bool:
        return self._started is not None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.stop()


@dataclass
class IOStats:
    """Mutable counters for logical I/O performed against a store.

    Attributes:
        bytes_read: Total bytes fetched by read operations.
        bytes_written: Total bytes stored by write operations.
        reads: Number of read operations.
        writes: Number of write operations.
        cache_hits: Reads served from a batch fetch cache instead of
            the store (not charged to ``bytes_read``).
        bytes_cached: Bytes those cache hits would have re-fetched —
            the I/O the batched counting engine avoided.
    """

    bytes_read: int = 0
    bytes_written: int = 0
    reads: int = 0
    writes: int = 0
    cache_hits: int = 0
    bytes_cached: int = 0

    def record_read(self, nbytes: int) -> None:
        """Account for one read of ``nbytes`` logical bytes."""
        if nbytes < 0:
            raise ValueError(f"read size must be non-negative, got {nbytes}")
        self.bytes_read += nbytes
        self.reads += 1

    def record_write(self, nbytes: int) -> None:
        """Account for one write of ``nbytes`` logical bytes."""
        if nbytes < 0:
            raise ValueError(f"write size must be non-negative, got {nbytes}")
        self.bytes_written += nbytes
        self.writes += 1

    def record_reads(self, count: int, nbytes: int) -> None:
        """Account for ``count`` reads totalling ``nbytes`` at once.

        The batched counting engine charges one block's distinct
        fetches in a single call; the totals are identical to ``count``
        individual :meth:`record_read` calls.
        """
        if count < 0 or nbytes < 0:
            raise ValueError(
                f"read count/size must be non-negative, got {count}/{nbytes}"
            )
        self.bytes_read += nbytes
        self.reads += count

    def record_cached_read(self, nbytes: int) -> None:
        """Account for one read served from a per-batch fetch cache.

        The bytes are *not* added to :attr:`bytes_read` — the list was
        already charged when it entered the cache — but the avoided
        re-fetch is recorded so benchmarks can audit the saving.
        """
        if nbytes < 0:
            raise ValueError(f"read size must be non-negative, got {nbytes}")
        self.cache_hits += 1
        self.bytes_cached += nbytes

    def record_cached_reads(self, count: int, nbytes: int) -> None:
        """Account for ``count`` cache-served reads totalling ``nbytes``."""
        if count < 0 or nbytes < 0:
            raise ValueError(
                f"read count/size must be non-negative, got {count}/{nbytes}"
            )
        self.cache_hits += count
        self.bytes_cached += nbytes

    def reset(self) -> None:
        """Zero all counters."""
        self.bytes_read = 0
        self.bytes_written = 0
        self.reads = 0
        self.writes = 0
        self.cache_hits = 0
        self.bytes_cached = 0

    def snapshot(self) -> "IOStats":
        """Return an independent copy of the current counters."""
        return IOStats(
            self.bytes_read,
            self.bytes_written,
            self.reads,
            self.writes,
            self.cache_hits,
            self.bytes_cached,
        )

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Return counters accumulated since ``earlier`` was snapshotted."""
        return IOStats(
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            cache_hits=self.cache_hits - earlier.cache_hits,
            bytes_cached=self.bytes_cached - earlier.bytes_cached,
        )


@dataclass
class IOStatsRegistry:
    """A named collection of :class:`IOStats` counters.

    Different subsystems (block scans, TID-list fetches, materialized
    2-itemset fetches) meter themselves under distinct names so that a
    benchmark can break down where bytes went.
    """

    counters: dict[str, IOStats] = field(default_factory=dict)

    def get(self, name: str) -> IOStats:
        """Return the counter registered under ``name``, creating it if new."""
        if name not in self.counters:
            self.counters[name] = IOStats()
        return self.counters[name]

    def total_bytes_read(self) -> int:
        """Sum of bytes read across all registered counters."""
        return sum(c.bytes_read for c in self.counters.values())

    def total_bytes_written(self) -> int:
        """Sum of bytes written across all registered counters."""
        return sum(c.bytes_written for c in self.counters.values())

    def reset(self) -> None:
        """Reset every registered counter."""
        for counter in self.counters.values():
            counter.reset()

    def totals(self) -> IOStats:
        """All registered counters rolled up into one (a fresh copy)."""
        total = IOStats()
        for c in self.counters.values():
            total.bytes_read += c.bytes_read
            total.bytes_written += c.bytes_written
            total.reads += c.reads
            total.writes += c.writes
            total.cache_hits += c.cache_hits
            total.bytes_cached += c.bytes_cached
        return total

    def snapshot(self) -> "IOStatsRegistry":
        """An independent copy of every registered counter.

        Pair with :meth:`delta_since` to meter one phase's I/O without
        plumbing through each counter individually.
        """
        return IOStatsRegistry(
            counters={name: c.snapshot() for name, c in self.counters.items()}
        )

    def delta_since(self, earlier: "IOStatsRegistry") -> "IOStatsRegistry":
        """Per-counter deltas accumulated since ``earlier``.

        Counters registered after the snapshot delta against zero.
        """
        zero = IOStats()
        return IOStatsRegistry(
            counters={
                name: c.delta_since(earlier.counters.get(name, zero))
                for name, c in self.counters.items()
            }
        )

    @staticmethod
    def _row(c: IOStats) -> dict[str, int]:
        return {
            "bytes_read": c.bytes_read,
            "bytes_written": c.bytes_written,
            "reads": c.reads,
            "writes": c.writes,
            "cache_hits": c.cache_hits,
            "bytes_cached": c.bytes_cached,
        }

    def report(self) -> dict[str, dict[str, int]]:
        """Return a plain-dict summary suitable for printing or JSON.

        Includes a ``"totals"`` rollup row summing every registered
        counter (cache-hit fields included).
        """
        result = {
            name: self._row(c) for name, c in sorted(self.counters.items())
        }
        result["totals"] = self._row(self.totals())
        return result


#: Process-wide registry used by the storage layer by default.  Tests and
#: benchmarks that need isolation construct their own registry instead.
GLOBAL_IO_REGISTRY = IOStatsRegistry()
