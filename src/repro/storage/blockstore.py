"""A simulated disk-resident store for blocks of tuples.

The paper's environment keeps the evolving database on disk: each block
arrives, is scanned once to build per-block TID-lists (for itemsets) or
to update the CF-tree (for clustering), and is then only re-read when a
counting algorithm needs it.  ``BlockStore`` models that storage layer
in memory while charging every access to an :class:`~repro.storage.iostats.IOStats`
counter, so the benchmarks can report the bytes-fetched shapes the paper
argues from.

Sizes are *logical*: a transaction costs 4 bytes per item identifier, a
TID-list entry costs 4 bytes, and a d-dimensional point costs 8 bytes
per coordinate.  These match the paper's accounting (TID-lists occupy
the same space as the transactional format, §3.1.1).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Generic, TypeVar

from repro.core.blocks import Block
from repro.storage.iostats import IOStats, IOStatsRegistry

T = TypeVar("T")

#: Logical size of one integer field (an item id or a transaction id).
INT_BYTES = 4
#: Logical size of one floating-point coordinate.
FLOAT_BYTES = 8


def transaction_nbytes(transaction: Sequence[int]) -> int:
    """Logical size of one transaction stored in transactional format."""
    return INT_BYTES * len(transaction)


def tidlist_nbytes(tids: Sequence[int]) -> int:
    """Logical size of one TID-list (one integer per transaction id)."""
    return INT_BYTES * len(tids)


def point_nbytes(point: Sequence[float]) -> int:
    """Logical size of one d-dimensional point."""
    return FLOAT_BYTES * len(point)


class StoredBlock(Generic[T]):
    """One immutable stored block together with its logical size.

    The record source is either a materialized tuple (the classic
    ``append`` path) or a :class:`~repro.core.blocks.Block` handle (the
    ``append_block`` path), in which case iteration streams chunk-wise
    off whatever backend the block lives on.
    """

    __slots__ = ("block_id", "_source", "nbytes")

    def __init__(self, block_id: int, source: Sequence[T] | Block[T], nbytes: int):
        self.block_id = block_id
        self._source: tuple[T, ...] | Block[T] = (
            source if isinstance(source, Block) else tuple(source)
        )
        self.nbytes = nbytes

    def __len__(self) -> int:
        return len(self._source)

    def iter_records(self) -> Iterator[T]:
        if isinstance(self._source, Block):
            return self._source.iter_records()
        return iter(self._source)

    @property
    def tuples(self) -> tuple[T, ...]:
        if isinstance(self._source, Block):
            return self._source.materialize()
        return self._source


class BlockStore(Generic[T]):
    """Append-only store of blocks with metered scans.

    Args:
        sizer: Function mapping one tuple to its logical byte size.
        registry: I/O registry to charge accesses to; a private one is
            created when omitted.
        counter_name: Name of the counter within ``registry`` that block
            scans are charged to.
    """

    def __init__(
        self,
        sizer=transaction_nbytes,
        registry: IOStatsRegistry | None = None,
        counter_name: str = "block_scan",
    ):
        self._sizer = sizer
        self.registry = registry if registry is not None else IOStatsRegistry()
        self._stats = self.registry.get(counter_name)
        self._blocks: dict[int, StoredBlock[T]] = {}

    @property
    def stats(self) -> IOStats:
        """The counter that block scans are charged to."""
        return self._stats

    def append(self, block_id: int, tuples: Iterable[T]) -> StoredBlock[T]:
        """Store a new block under ``block_id``.

        Raises:
            ValueError: if a block with this identifier already exists.
        """
        if block_id in self._blocks:
            raise ValueError(f"block {block_id} already stored")
        materialized = list(tuples)
        nbytes = sum(self._sizer(t) for t in materialized)
        stored = StoredBlock(block_id, materialized, nbytes)
        self._blocks[block_id] = stored
        self._stats.record_write(nbytes)
        return stored

    def append_block(self, block: Block[T]) -> StoredBlock[T]:
        """Store a :class:`~repro.core.blocks.Block` under its own id.

        The block is streamed chunk-wise off its backend rather than
        materialized, and its logical size comes from backend metadata
        (``block.nbytes`` uses the same 4-byte-int / 8-byte-float
        accounting as the sizers here).

        Raises:
            ValueError: if a block with this identifier already exists.
        """
        if block.block_id in self._blocks:
            raise ValueError(f"block {block.block_id} already stored")
        stored = StoredBlock(block.block_id, block, block.nbytes)
        self._blocks[block.block_id] = stored
        self._stats.record_write(stored.nbytes)
        return stored

    def drop(self, block_id: int) -> None:
        """Remove a block (e.g. when it expires out of every window)."""
        if block_id not in self._blocks:
            raise KeyError(f"block {block_id} not stored")
        del self._blocks[block_id]

    def block_ids(self) -> list[int]:
        """Identifiers of all stored blocks in ascending order."""
        return sorted(self._blocks)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def nbytes(self, block_id: int) -> int:
        """Logical size of one stored block."""
        return self._blocks[block_id].nbytes

    def total_nbytes(self) -> int:
        """Logical size of the whole store."""
        return sum(b.nbytes for b in self._blocks.values())

    def scan(self, block_id: int) -> Iterator[T]:
        """Iterate over one block's tuples, charging a full-block read."""
        block = self._blocks[block_id]
        self._stats.record_read(block.nbytes)
        return block.iter_records()

    def scan_many(self, block_ids: Iterable[int]) -> Iterator[T]:
        """Iterate over several blocks in the given order, charging each."""
        for block_id in block_ids:
            yield from self.scan(block_id)

    def peek(self, block_id: int) -> tuple[T, ...]:
        """Return a block's tuples without charging I/O.

        Intended for tests and assertions only; algorithm code must use
        :meth:`scan` so the byte accounting stays honest.
        """
        return self._blocks[block_id].tuples
