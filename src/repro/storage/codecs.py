"""Column codecs for the tiered storage engine (delta+varint, bitmaps).

Cold blocks — expired from the most recent window but still selectable
by a window-independent BSS — compact to compressed on-disk form (see
:class:`~repro.storage.engine.TieredBackend`).  This module owns the
encodings, behind one tiny :class:`ColumnCodec` protocol with an exact
round-trip guarantee: ``decode(encode(values), len(values))`` returns
the input bit-for-bit for every ``int64`` array.

Four integer codecs ship:

* :class:`DeltaVarintCodec` — zigzag-encoded first differences in
  LEB128 varint bytes.  Sorted TID-lists and CSR offset columns (small,
  mostly-positive deltas) compress to one or two bytes per value; the
  zigzag step keeps *unsorted* int columns (CSR value runs restart at
  every transaction) lossless.  Encode and decode are fully vectorized:
  no Python-level per-value loop touches the data.
* :class:`ChunkedBitmapCodec` — a roaring-style layout for sorted
  duplicate-free non-negative arrays: values partition into
  ``2**16``-wide containers, each stored as a sorted ``uint16`` array
  when sparse or a packed 8 KiB bitmap when it holds more than
  :data:`ARRAY_CONTAINER_MAX` values (the byte-size crossover point).
* :class:`RawU16Codec` — fixed two-byte values for unsorted narrow
  columns (item ids); trades ~0.7 bytes/value against delta-varint
  for a branch-free single-``frombuffer`` decode on the cold scan
  path.
* :class:`RawCodec` — ``tobytes``/``frombuffer``; the identity baseline
  the benchmarks compare against.

Float and pickled payloads have no integer structure to exploit, so the
byte-level helpers :func:`deflate` / :func:`inflate` (stdlib zlib) cover
the dense and pickle block layouts, and GEMM's model-spill bytes, when
those travel through the cold tier.
"""

from __future__ import annotations

import zlib
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = [
    "ARRAY_CONTAINER_MAX",
    "CONTAINER_BITS",
    "CONTAINER_SIZE",
    "ChunkedBitmapCodec",
    "CodecError",
    "ColumnCodec",
    "DeltaVarintCodec",
    "RawCodec",
    "RawU16Codec",
    "deflate",
    "inflate",
    "resolve_codec",
]

#: Width of one roaring-style container in values.
CONTAINER_BITS = 16
CONTAINER_SIZE = 1 << CONTAINER_BITS

#: A container holding more values than this stores a packed bitmap
#: (8 KiB) instead of a sorted ``uint16`` array — the exact byte-size
#: crossover (``2 bytes * 4096 = 8192``).
ARRAY_CONTAINER_MAX = 4096

#: Maximum LEB128 bytes one 64-bit value can need (ceil(64 / 7)).
_MAX_VARINT_BYTES = 10

_U64 = np.uint64
_SEVEN = _U64(7)
_LOW7 = _U64(0x7F)


class CodecError(ValueError):
    """A blob cannot be decoded (wrong codec, count, or corruption)."""


@runtime_checkable
class ColumnCodec(Protocol):
    """Encodes one ``int64`` column to bytes and back, exactly.

    Implementations must round-trip every array they accept:
    ``decode(encode(values), len(values))`` equals ``values``
    element-for-element with dtype ``int64``.
    """

    #: Registry name, recorded in block ``meta.json`` files and specs.
    name: str

    def encode(self, values: np.ndarray) -> bytes:
        """Serialize a 1-d ``int64`` array."""
        ...

    def decode(self, blob: bytes, count: int) -> np.ndarray:
        """Recover exactly ``count`` values from :meth:`encode` output."""
        ...


def _as_int64(values: np.ndarray) -> np.ndarray:
    array = np.asarray(values)
    if array.ndim != 1:
        raise CodecError(f"column codecs take 1-d arrays, got shape {array.shape}")
    return array.astype(np.int64, copy=False)


# ----------------------------------------------------------------------
# Delta + varint
# ----------------------------------------------------------------------


def _zigzag(deltas: np.ndarray) -> np.ndarray:
    """Map signed deltas onto small unsigned values (int64 -> uint64)."""
    unsigned = deltas.astype(_U64)
    return (unsigned << _U64(1)) ^ (deltas >> np.int64(63)).astype(_U64)


def _unzigzag(encoded: np.ndarray) -> np.ndarray:
    return (
        (encoded >> _U64(1)) ^ (_U64(0) - (encoded & _U64(1)))
    ).astype(np.int64)


class DeltaVarintCodec:
    """Zigzag deltas in LEB128 varints, vectorized both ways.

    The first value is stored as its own (zigzagged) delta from zero,
    so the blob is self-contained.  Continuation bits are standard
    LEB128: the high bit of every byte except a value's last is set.
    """

    name = "delta-varint"

    def encode(self, values: np.ndarray) -> bytes:
        array = _as_int64(values)
        if len(array) == 0:
            return b""
        deltas = np.empty(len(array), dtype=np.int64)
        deltas[0] = array[0]
        np.subtract(array[1:], array[:-1], out=deltas[1:])
        encoded = _zigzag(deltas)
        # Bytes needed per value: one comparison per 7-bit threshold.
        nbytes = np.ones(len(encoded), dtype=np.int64)
        for shift in range(7, 64, 7):
            nbytes += encoded >= _U64(1) << _U64(shift)
        positions = np.arange(_MAX_VARINT_BYTES, dtype=np.int64)
        shifts = (_SEVEN * positions.astype(_U64))[None, :]
        payload = ((encoded[:, None] >> shifts) & _LOW7).astype(np.uint8)
        keep = positions[None, :] < nbytes[:, None]
        continued = positions[None, :] < (nbytes - 1)[:, None]
        payload |= continued.astype(np.uint8) << np.uint8(7)
        # Row-major boolean selection emits each value's bytes in order.
        return payload[keep].tobytes()

    def decode(self, blob: bytes, count: int) -> np.ndarray:
        if count == 0:
            if len(blob):
                raise CodecError("trailing bytes after the last varint")
            return np.empty(0, dtype=np.int64)
        raw = np.frombuffer(blob, dtype=np.uint8)
        if len(raw) == 0:
            raise CodecError(f"empty blob cannot hold {count} values")
        continued = (raw & np.uint8(0x80)) != 0
        if continued[-1]:
            raise CodecError("blob ends inside a varint")
        if len(raw) == count and not continued.any():
            # Every byte is its own varint (tiny deltas — the shape of
            # per-record length columns): decode is a single widen.
            return np.cumsum(_unzigzag(raw.astype(_U64)), dtype=np.int64)
        # Every varint ends in exactly one non-continuation byte, so the
        # continuation positions alone give the varint count — no start
        # scan needed to validate.
        multi = np.flatnonzero(continued)
        if len(raw) - len(multi) != count:
            raise CodecError(
                f"blob holds {len(raw) - len(multi)} varints, expected {count}"
            )
        # Fast path: no varint longer than two bytes (small deltas, the
        # overwhelmingly common shape for sorted tids and item columns).
        # Adjacent continuation bytes are the only way to spell a third
        # byte, the k-th two-byte varint starts ``k`` continuation bytes
        # past its index — so one diff and one subtract recover every
        # boundary — and the arithmetic runs at uint16 width (a
        # two-byte varint's zigzag value is under 2**14, so its delta
        # fits int16).
        starts = np.empty(len(raw), dtype=bool)
        starts[0] = True
        np.logical_not(continued[:-1], out=starts[1:])
        start_indices = np.flatnonzero(starts)
        if 2 * count >= len(raw) and not (np.diff(multi) == 1).any():
            encoded = (raw[start_indices] & np.uint8(0x7F)).astype(np.uint16)
            if len(multi):
                second = multi - np.arange(len(multi), dtype=np.int64)
                encoded[second] |= raw[multi + 1].astype(np.uint16) << np.uint16(7)
            deltas = (
                (encoded >> np.uint16(1))
                ^ (np.uint16(0) - (encoded & np.uint16(1)))
            ).view(np.int16)
            return np.cumsum(deltas, dtype=np.int64)
        low7 = (raw & np.uint8(0x7F)).astype(_U64)
        group = np.cumsum(starts) - 1
        offsets = (
            np.arange(len(raw), dtype=np.int64) - start_indices[group]
        ).astype(_U64)
        if int(offsets.max()) >= _MAX_VARINT_BYTES:
            raise CodecError("varint longer than 10 bytes")
        pieces = low7 << (_SEVEN * offsets)
        encoded = np.bitwise_or.reduceat(pieces, start_indices)
        return np.cumsum(_unzigzag(encoded), dtype=np.int64)


# ----------------------------------------------------------------------
# Roaring-style chunked bitmap
# ----------------------------------------------------------------------

#: Container kinds in the serialized layout.
_ARRAY_CONTAINER = 0
_BITMAP_CONTAINER = 1

#: Words per full-container bitmap (``2**16 / 64``).
_CONTAINER_WORDS = CONTAINER_SIZE // 64

_HEADER_DTYPE = np.dtype(
    [("key", "<u4"), ("kind", "<u4"), ("cardinality", "<u4")]
)


def split_containers(
    values: np.ndarray,
) -> list[tuple[int, np.ndarray]]:
    """Partition a sorted non-negative array into ``(key, low16)`` runs.

    ``key`` is ``value >> 16``; the returned low halves are sorted
    ``uint16`` arrays.  Shared by the codec and the compressed-domain
    kernels (:mod:`repro.itemsets.kernels`), which intersect
    container-by-container.
    """
    array = _as_int64(values)
    if len(array) == 0:
        return []
    keys = array >> np.int64(CONTAINER_BITS)
    boundaries = np.flatnonzero(np.diff(keys)) + 1
    pieces = np.split(array, boundaries)
    return [
        (int(piece[0]) >> CONTAINER_BITS, (piece & np.int64(0xFFFF)).astype(np.uint16))
        for piece in pieces
    ]


def pack_container(low: np.ndarray) -> np.ndarray:
    """Pack sorted ``uint16`` low halves into a 1024-word bitmap."""
    words = np.zeros(_CONTAINER_WORDS, dtype=np.uint64)
    offsets = low.astype(_U64)
    np.bitwise_or.at(
        words, offsets >> _U64(6), _U64(1) << (offsets & _U64(63))
    )
    return words


def unpack_container(words: np.ndarray) -> np.ndarray:
    """Sorted ``uint16`` low halves of a 1024-word bitmap."""
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return np.flatnonzero(bits).astype(np.uint16)


class ChunkedBitmapCodec:
    """Roaring-style serialization of sorted duplicate-free arrays.

    Layout: ``uint32`` container count, then one 12-byte header per
    container (key, kind, cardinality), then the concatenated payloads
    (sorted ``uint16`` arrays or 8 KiB packed bitmaps).  Requires the
    input to be sorted, duplicate-free, and non-negative — exactly the
    shape of a TID-list or CSR offset column.
    """

    name = "chunked-bitmap"

    def encode(self, values: np.ndarray) -> bytes:
        array = _as_int64(values)
        if len(array) and (
            int(array[0]) < 0 or np.any(array[1:] <= array[:-1])
        ):
            raise CodecError(
                "chunked-bitmap encodes sorted duplicate-free "
                "non-negative arrays"
            )
        containers = split_containers(array)
        headers = np.empty(len(containers), dtype=_HEADER_DTYPE)
        payloads: list[bytes] = []
        for index, (key, low) in enumerate(containers):
            if len(low) > ARRAY_CONTAINER_MAX:
                kind = _BITMAP_CONTAINER
                payloads.append(pack_container(low).tobytes())
            else:
                kind = _ARRAY_CONTAINER
                payloads.append(low.tobytes())
            headers[index] = (key, kind, len(low))
        return b"".join(
            [
                np.uint32(len(containers)).tobytes(),
                headers.tobytes(),
                *payloads,
            ]
        )

    def decode(self, blob: bytes, count: int) -> np.ndarray:
        if len(blob) < 4:
            raise CodecError("chunked-bitmap blob shorter than its header")
        n_containers = int(np.frombuffer(blob, dtype=np.uint32, count=1)[0])
        offset = 4 + n_containers * _HEADER_DTYPE.itemsize
        headers = np.frombuffer(
            blob, dtype=_HEADER_DTYPE, count=n_containers, offset=4
        )
        parts: list[np.ndarray] = []
        total = 0
        for key, kind, cardinality in headers:
            high = np.int64(int(key)) << np.int64(CONTAINER_BITS)
            if kind == _BITMAP_CONTAINER:
                words = np.frombuffer(
                    blob, dtype=np.uint64, count=_CONTAINER_WORDS, offset=offset
                )
                offset += _CONTAINER_WORDS * 8
                low = unpack_container(words)
                if len(low) != cardinality:
                    raise CodecError("bitmap container cardinality mismatch")
            else:
                low = np.frombuffer(
                    blob, dtype=np.uint16, count=int(cardinality), offset=offset
                )
                offset += int(cardinality) * 2
            parts.append(low.astype(np.int64) + high)
            total += int(cardinality)
        if total != count:
            raise CodecError(f"blob holds {total} values, expected {count}")
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)


class RawCodec:
    """Identity codec: little-endian ``int64`` bytes."""

    name = "raw"

    def encode(self, values: np.ndarray) -> bytes:
        return _as_int64(values).astype("<i8", copy=False).tobytes()

    def decode(self, blob: bytes, count: int) -> np.ndarray:
        if len(blob) != count * 8:
            raise CodecError(
                f"raw blob of {len(blob)} bytes cannot hold {count} int64s"
            )
        return np.frombuffer(blob, dtype="<i8").astype(np.int64, copy=False)


class RawU16Codec:
    """Fixed two-byte values for columns that fit ``uint16``.

    Item-id value columns are narrow (the DEMON datasets top out around
    a thousand distinct items) but *unsorted* within each transaction
    run, so delta-varint pays a full boundary scan per decode without
    earning bytes back.  Storing them as raw little-endian ``uint16``
    costs ~2 bytes/value instead of ~1.3 — still 4x under dense
    ``int64`` — and decode collapses to one ``frombuffer`` plus a
    widening copy, with no data-dependent branches.  Encode rejects any
    value outside ``[0, 2**16)`` so the round-trip guarantee holds.
    """

    name = "raw-u16"

    def encode(self, values: np.ndarray) -> bytes:
        array = _as_int64(values)
        if len(array) and (
            int(array.min()) < 0 or int(array.max()) > 0xFFFF
        ):
            raise CodecError("raw-u16 encodes values in [0, 65536) only")
        return array.astype("<u2").tobytes()

    def decode(self, blob: bytes, count: int) -> np.ndarray:
        if len(blob) != count * 2:
            raise CodecError(
                f"raw-u16 blob of {len(blob)} bytes cannot hold {count} values"
            )
        return np.frombuffer(blob, dtype="<u2").astype(np.int64)


# ----------------------------------------------------------------------
# Byte-payload compression (dense float / pickle chunk layouts)
# ----------------------------------------------------------------------


def deflate(payload: bytes, level: int = 6) -> bytes:
    """Compress an opaque byte payload (zlib)."""
    return zlib.compress(payload, level)


def inflate(blob: bytes) -> bytes:
    """Reverse :func:`deflate` exactly."""
    return zlib.decompress(blob)


_CODECS: dict[str, ColumnCodec] = {
    codec.name: codec
    for codec in (
        DeltaVarintCodec(),
        ChunkedBitmapCodec(),
        RawCodec(),
        RawU16Codec(),
    )
}


def resolve_codec(name: str) -> ColumnCodec:
    """Look up a registered codec by its ``meta.json``/spec name."""
    codec = _CODECS.get(name)
    if codec is None:
        raise CodecError(
            f"unknown column codec {name!r}; registered: {sorted(_CODECS)}"
        )
    return codec
