"""The data span dimension (paper §2.2): unrestricted and most recent windows.

The data span dimension gives the analyst two options for which temporal
subset of the snapshot is mined:

* **Unrestricted window (UW)** — ``D[1, t]``, everything collected so far.
* **Most recent window (MRW)** — ``D[t-w+1, t]``, the latest ``w``
  blocks (or ``D[1, t]`` while ``t < w``).

A window object resolves, for a given latest block identifier ``t``, the
inclusive block-identifier range it spans.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BlockRange:
    """An inclusive range of block identifiers ``D[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 1 or self.hi < self.lo:
            raise ValueError(f"invalid block range D[{self.lo}, {self.hi}]")

    def __len__(self) -> int:
        return self.hi - self.lo + 1

    def __contains__(self, block_id: int) -> bool:
        return self.lo <= block_id <= self.hi

    def ids(self) -> range:
        """Iterate the identifiers in the range."""
        return range(self.lo, self.hi + 1)


class UnrestrictedWindow:
    """The UW option: all blocks collected so far."""

    def span(self, t: int) -> BlockRange:
        """Resolve ``D[1, t]`` for latest block ``t``."""
        if t < 1:
            raise ValueError(f"snapshot must contain at least one block, got t={t}")
        return BlockRange(1, t)

    def __repr__(self) -> str:
        return "UnrestrictedWindow()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UnrestrictedWindow)

    def __hash__(self) -> int:
        return hash(type(self))


class MostRecentWindow:
    """The MRW option: the latest ``w`` blocks.

    Args:
        w: Window size in blocks; application-dependent and chosen by
            the analyst (paper §2.2).
    """

    def __init__(self, w: int) -> None:
        if w < 1:
            raise ValueError(f"window size must be >= 1, got {w}")
        self.w = w

    def span(self, t: int) -> BlockRange:
        """Resolve ``D[max(1, t-w+1), t]`` for latest block ``t``.

        While ``t < w`` the window is the whole snapshot ``D[1, t]``
        (paper §2.2).
        """
        if t < 1:
            raise ValueError(f"snapshot must contain at least one block, got t={t}")
        return BlockRange(max(1, t - self.w + 1), t)

    def is_full(self, t: int) -> bool:
        """Whether the window has reached its full size ``w``."""
        return t >= self.w

    def __repr__(self) -> str:
        return f"MostRecentWindow(w={self.w})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MostRecentWindow):
            return NotImplemented
        return self.w == other.w

    def __hash__(self) -> int:
        return hash((type(self), self.w))
