"""MiningSession — one checkpointable driver for DEMON's problem space.

Figure 11 enumerates DEMON's problem space as the cross product of the
data span dimension {unrestricted window, most recent window} and the
two objectives {model maintenance, pattern detection}.  A
:class:`MiningSession` owns one point (or row) of that space — the span
option, the block selection sequence, the incremental maintainer
``A_M``, and optionally the compact-sequence miner — plus the two
cross-cutting concerns the individual engines cannot provide alone:

* **a unified telemetry spine** — every subsystem the session drives
  (BORDERS detection/update, ECUT/ECUT+ counting, BIRCH+ rebuilds,
  GEMM critical/off-line updates, FOCUS deviation scans, pattern
  matrix growth) reports phases, counters, and I/O into one shared
  :class:`~repro.storage.telemetry.Telemetry`; and
* **checkpoint/restore** — :meth:`checkpoint` serializes the whole
  session (engine state including GEMM's collection of models,
  the pattern miner's deviation matrix and sequences, the optional
  snapshot, and telemetry totals) into a
  :class:`~repro.storage.persist.ModelVault`, and
  :meth:`MiningSession.restore` resumes mid-stream in a fresh process
  with models identical to an uninterrupted run.

The legacy :class:`~repro.core.monitor.DemonMonitor` is a thin facade
over this class.  The checkpoint format is documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Generic,
    Protocol,
    TypeVar,
    runtime_checkable,
)

from repro.core.blocks import Block, Snapshot, make_block
from repro.core.bss import WindowIndependentBSS, WindowRelativeBSS
from repro.core.gemm import GEMM, GEMMUpdateReport
from repro.core.maintainer import (
    IncrementalModelMaintainer,
    UnrestrictedWindowMaintainer,
)
from repro.core.windows import MostRecentWindow, UnrestrictedWindow
from repro.parallel.pool import WorkerPool, resolve_workers
from repro.scheduling.policy import MaintenanceScheduler, resolve_scheduler
from repro.storage.engine import BlockBackend, resolve_backend
from repro.storage.persist import register_vault_namespace
from repro.storage.telemetry import Telemetry, TelemetrySnapshot, bind_telemetry

if TYPE_CHECKING:
    from repro.patterns.compact import (
        CompactSequence,
        CompactSequenceMiner,
        PatternUpdateReport,
    )
    from repro.storage.persist import ModelVault

TModel = TypeVar("TModel")
T = TypeVar("T")

SpanOption = UnrestrictedWindow | MostRecentWindow
BSSOption = WindowIndependentBSS | WindowRelativeBSS | None

#: Version stamp of the checkpoint payload layout.
CHECKPOINT_FORMAT = 1

#: Vault-key namespace for session checkpoints; the full key is
#: ``(CHECKPOINT_NAMESPACE, session_name)``, which never collides with
#: GEMM's ``gemm-spill`` keys (DML011: all tenants of a shared vault
#: root their keys in a registered namespace).
CHECKPOINT_NAMESPACE = register_vault_namespace("demon-session")


@runtime_checkable
class SupportsCompressBlock(Protocol):
    """A TID-list store that can re-encode an expired block in place.

    :meth:`compress_block` must be idempotent and safe for unknown
    block ids (returning 0 bytes saved), because under deferred
    maintenance an expired block may never have been materialized.
    """

    def compress_block(self, block_id: int) -> int:
        """Re-encode one block's lists; returns bytes saved."""
        ...


class CheckpointError(RuntimeError):
    """A session checkpoint could not be written or restored."""


def checkpoint_key(name: str) -> tuple[str, str]:
    """The vault key a session of this name checkpoints under."""
    return (CHECKPOINT_NAMESPACE, name)


@dataclass
class MonitorReport:
    """What one :meth:`MiningSession.observe` call did.

    Attributes:
        t: Identifier of the block just added.
        model_updated: Whether the current model changed (a 0-bit in
            the BSS carries the model over unchanged, and a deferring
            scheduler leaves it untouched until catch-up).
        decision: The scheduler's verdict for this arrival (``"eager"``,
            ``"warmup"``, ``"deviation"``, ``"staleness"``, or
            ``"deferred"``).
        maintained: Blocks brought current by this arrival's catch-up
            (0 when maintenance was deferred; under an eager policy
            always at least 1).
        pending: Blocks still awaiting maintenance after this arrival.
        gemm: GEMM accounting when running under the MRW option (the
            last catch-up's report; ``None`` while deferred).
        patterns: Pattern-detection accounting when enabled.
        telemetry: This observation's slice of the unified spine —
            phase timings, counter events, and I/O deltas accumulated
            while processing this block.
    """

    t: int
    model_updated: bool = False
    decision: str = "eager"
    maintained: int = 0
    pending: int = 0
    gemm: GEMMUpdateReport | None = None
    patterns: PatternUpdateReport | None = None
    telemetry: TelemetrySnapshot | None = None


class MiningSession(Generic[TModel, T]):
    """One resumable mining-and-monitoring session (Figure 11 driver).

    Args:
        maintainer: The incremental model maintainer ``A_M``
            (e.g. :class:`~repro.itemsets.BordersMaintainer` or
            :class:`~repro.clustering.BirchPlusMaintainer`).  ``None``
            runs a detection-only session (pattern mining without
            model maintenance); at least one objective is required.
        span: Data span option; defaults to the unrestricted window.
        bss: Block selection sequence.  A window-relative BSS requires
            the MRW option (§2.3: the UW/MRW distinction is what makes
            window-relative sequences expressible at all).
        pattern_miner: Optional
            :class:`~repro.patterns.CompactSequenceMiner`; when given,
            every observed block also feeds pattern detection.
        keep_snapshot: Whether to retain all blocks in a
            :class:`~repro.core.blocks.Snapshot` (needed only when the
            caller wants to re-derive models or label datasets later).
        vault: Optional :class:`~repro.storage.persist.ModelVault`.
            Under the MRW option GEMM keeps only the current model in
            memory and spills the rest here (§3.2.3); it is also the
            default target of :meth:`checkpoint`.
        telemetry: The instrumentation spine; a private one is created
            when omitted, and every driven subsystem is rebound onto it.
        backend: Block storage backend the session ingests onto — a
            :class:`~repro.storage.engine.BlockBackend` instance, a
            name (``"memory"``/``"mmap"``), or a spec dict from
            :meth:`~repro.storage.engine.BlockBackend.spec`.  ``None``
            defers to the ambient ``DEMON_BLOCK_BACKEND`` toggle (plain
            in-memory blocks by default).  Checkpoints record the
            backend spec so :meth:`restore` resumes onto it.
        workers: Process count for sharded maintenance
            (:mod:`repro.parallel`).  ``None`` defers to the
            ``DEMON_WORKERS`` environment toggle (default 1 = fully
            serial).  More than one worker shards ECUT counting by
            block and GEMM's off-line updates by model; results are
            byte-identical to a serial run.  The setting is execution
            config, not state: checkpoints never record it, and
            :meth:`restore` takes its own ``workers``.
        scheduler: Maintenance scheduling policy — a
            :class:`~repro.scheduling.MaintenanceScheduler` instance, a
            name (``"eager"``/``"deviation"``), or a spec dict from
            :meth:`~repro.scheduling.MaintenanceScheduler.spec`.
            ``None`` defers to the ambient ``DEMON_SCHEDULER`` toggle
            (eager by default).  A deferring policy queues arriving
            blocks after the cheap ingest step and catches up — in
            arrival order, so a flushed session is byte-identical to an
            eager one — when drift or staleness demands it; checkpoints
            record the policy spec and its pending queue so
            :meth:`restore` resumes mid-deferral.
        name: Checkpoint name — sessions with distinct names can share
            one vault.
    """

    def __init__(
        self,
        maintainer: IncrementalModelMaintainer[TModel, T] | None = None,
        span: SpanOption | None = None,
        bss: BSSOption = None,
        pattern_miner: CompactSequenceMiner | None = None,
        keep_snapshot: bool = False,
        vault: ModelVault | None = None,
        telemetry: Telemetry | None = None,
        backend: BlockBackend | str | dict[str, Any] | None = None,
        workers: int | None = None,
        scheduler: MaintenanceScheduler | str | dict[str, Any] | None = None,
        name: str = "session",
    ) -> None:
        self.span: SpanOption = span if span is not None else UnrestrictedWindow()
        if isinstance(bss, WindowRelativeBSS) and not isinstance(
            self.span, MostRecentWindow
        ):
            raise ValueError(
                "a window-relative BSS is only meaningful under the most "
                "recent window option"
            )
        if maintainer is None and pattern_miner is None:
            raise ValueError(
                "a session needs at least one objective: a maintainer "
                "(model maintenance) or a pattern miner (detection)"
            )
        self.maintainer = maintainer
        self.bss = bss
        self.pattern_miner = pattern_miner
        self.snapshot: Snapshot[T] | None = Snapshot() if keep_snapshot else None
        self.vault = vault
        self.backend: BlockBackend | None = resolve_backend(backend)
        self.name = name
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.scheduler: MaintenanceScheduler = resolve_scheduler(scheduler)
        #: Ingested blocks still owed maintenance, in arrival order.
        self._pending: list[Block[T]] = []
        self.workers = resolve_workers(workers)
        self._pool: WorkerPool | None = (
            WorkerPool(self.workers, telemetry=self.telemetry)
            if self.workers > 1
            else None
        )

        self._engine: GEMM[TModel, T] | UnrestrictedWindowMaintainer[TModel, T] | None
        if maintainer is None:
            self._engine = None
        elif isinstance(self.span, MostRecentWindow):
            self._engine = GEMM(
                maintainer, self.span.w, bss=bss, vault=vault, name=f"{name}.gemm"
            )
        else:
            if isinstance(bss, WindowRelativeBSS):  # unreachable, guarded above
                raise AssertionError
            self._engine = UnrestrictedWindowMaintainer(maintainer, bss=bss)
        self._wire_telemetry()

    # ------------------------------------------------------------------
    # Telemetry wiring
    # ------------------------------------------------------------------

    def _wire_telemetry(self) -> None:
        """Rebind every driven subsystem onto the session's spine.

        Components default to private :class:`Telemetry` instances so
        they work standalone; the session makes them all report into
        one.  Subsystems that own an I/O registry (an itemset mining
        context, the vault) are attached so byte accounting flows too.
        """
        if self._engine is not None:
            bind_telemetry(self._engine, self.telemetry)
        if self.maintainer is not None:
            bind_telemetry(self.maintainer, self.telemetry)
            context = getattr(self.maintainer, "context", None)
            registry = getattr(context, "registry", None)
            if registry is not None:
                self.telemetry.attach_io("maintainer", registry)
        if self.pattern_miner is not None:
            bind_telemetry(self.pattern_miner, self.telemetry)
        bind_telemetry(self.scheduler, self.telemetry)
        if self.vault is not None:
            self.telemetry.attach_io("vault", self.vault.registry)
        if self.backend is not None:
            bind_telemetry(self.backend, self.telemetry)
            self.telemetry.attach_io("backend", self.backend.registry)
            # A backend that compresses its cold tier also lends its
            # byte codec to GEMM's vault spill, so disk-resident models
            # ride the same tiering discipline (§3.2.3).
            spill = getattr(self.backend, "spill_codec", None)
            if spill is not None and self.vault is not None:
                enable = getattr(self.vault, "enable_codec", None)
                if callable(enable):
                    enable(spill)
        if self._pool is not None:
            # Sharded execution rides the same wiring pass: GEMM fans
            # off-line updates out per model, and a poolable counter
            # (ECUT) shards count_batch by block.
            if isinstance(self._engine, GEMM):
                self._engine.bind_pool(self._pool)
            counter = getattr(self.maintainer, "counter", None)
            bind = getattr(counter, "bind_pool", None)
            if callable(bind):
                bind(self._pool)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    @property
    def t(self) -> int:
        """Identifier of the latest *ingested* block.

        Under a deferring scheduler this runs ahead of the engines'
        clocks: ingested-but-unmaintained blocks count (the stream
        position is an ingest-side notion; the engines catch up).
        """
        if self._pending:
            return self._pending[-1].block_id
        if self._engine is not None:
            return self._engine.t
        if self.pattern_miner is not None:
            return self.pattern_miner.t
        return 0

    @property
    def pending_maintenance(self) -> int:
        """Ingested blocks still awaiting maintenance."""
        return len(self._pending)

    @property
    def engine(
        self,
    ) -> GEMM[TModel, T] | UnrestrictedWindowMaintainer[TModel, T] | None:
        """The span-specific maintenance engine (None when detection-only)."""
        return self._engine

    def current_model(self) -> TModel:
        """The model on the configured span w.r.t. the configured BSS.

        Reading the model is a synchronization point: any deferred
        maintenance runs first (:meth:`maintain`), so callers always
        see the model an eager session would show at this ``t``.
        """
        if self._engine is None:
            raise RuntimeError("session has no maintainer, so no model")
        self.maintain()
        if isinstance(self._engine, GEMM):
            return self._engine.current_model()
        return self._engine.model

    def current_selection(self) -> list[int]:
        """Identifiers of the blocks the current model is extracted from.

        Like :meth:`current_model`, a synchronization point: deferred
        maintenance runs first.
        """
        self.maintain()
        return self._live_selection()

    def _live_selection(self) -> list[int]:
        """The engine's selection as it stands, without catching up."""
        if self._engine is None:
            return []
        if isinstance(self._engine, GEMM):
            return sorted(self._engine.current_selection())
        return self._engine.selected_block_ids

    def observe(self, block: Block[T]) -> MonitorReport:
        """Feed the next arriving block through ingest and scheduling.

        The arrival always takes the cheap ingest path — snapshot
        extend and pending-queue append (the backend write happened in
        :meth:`ingest`, or the caller materialized the block) — and the
        configured scheduler then decides whether full maintenance runs
        now or is deferred.  An eager policy (the default) maintains on
        every arrival, matching the historical behavior exactly.
        """
        before = self.telemetry.snapshot()
        report = MonitorReport(t=block.block_id)
        with self.telemetry.phase("session.observe"):
            # Validate stream order before any state mutates: a
            # rejected block must not leave the session's checkpointed
            # state touched (exception atomicity, DML018).  Engines
            # re-validate on replay, but by then the block is already
            # ingested, so the gate has to sit here.
            expected = self.t + 1
            if block.block_id != expected:
                raise ValueError(
                    f"systematic evolution requires block id {expected}, "
                    f"got {block.block_id}"
                )
            selection_before = self._live_selection()
            decision = self.scheduler.decide(block, len(self._pending) + 1)
            with self.telemetry.phase("session.ingest"):
                if self.snapshot is not None:
                    self.snapshot.extend(block)
                self._pending.append(block)
            report.decision = decision.reason
            if decision.maintain:
                self.telemetry.increment("scheduler.triggered")
                if decision.reason == "staleness":
                    self.telemetry.increment("scheduler.staleness_flushes")
                report.maintained = self.maintain(report)
            else:
                self.telemetry.increment("scheduler.deferred")
            report.pending = len(self._pending)
            report.model_updated = self._live_selection() != selection_before
        self.telemetry.increment("session.blocks")
        # Record count comes from backend metadata — no materialization.
        self.telemetry.increment("session.records", block.num_records)
        report.telemetry = self.telemetry.delta_since(before)
        return report

    def maintain(self, report: MonitorReport | None = None) -> int:
        """Run all deferred maintenance now; returns blocks caught up.

        Replays the pending queue in arrival order through every
        configured engine, so the resulting models are byte-identical
        to an eager session's at the same ``t``.  A no-op (returning 0)
        when nothing is pending — reads may call it unconditionally.
        """
        if not self._pending:
            return 0
        with self.telemetry.phase("session.maintain") as span:
            maintained = self._drain_pending(report)
        self.scheduler.notify_maintained(self.t, maintained, span.seconds)
        return maintained

    def flush(self) -> int:
        """End-of-stream barrier: alias of :meth:`maintain`."""
        return self.maintain()

    def _drain_pending(self, report: MonitorReport | None) -> int:
        """Catch the engines up over the pending run, in order.

        A GEMM-only session takes the batched
        :meth:`~repro.core.gemm.GEMM.observe_run` path, which skips the
        retired-intermediate models an eager replay would build (and
        fans chains across the worker pool when one is bound).  Every
        other configuration replays block by block; either way a block
        leaves the queue only after every engine accepted it, so a
        failed catch-up keeps the unprocessed tail pending and
        retryable.  Expiry bookkeeping runs *after* maintenance — a
        block still owed maintenance is never tiered down under it.
        """
        maintained = 0
        if (
            isinstance(self._engine, GEMM)
            and self.pattern_miner is None
            and len(self._pending) > 1
        ):
            run = list(self._pending)
            gemm_report = self._engine.observe_run(run)
            if report is not None:
                report.gemm = gemm_report
            self._pending.clear()
            for block in run:
                self._expire_cold(block.block_id)
            return len(run)
        while self._pending:
            block = self._pending[0]
            if isinstance(self._engine, GEMM):
                gemm_report = self._engine.observe(block)
                if report is not None:
                    report.gemm = gemm_report
            elif self._engine is not None:
                self._engine.observe(block)
            if self.pattern_miner is not None:
                patterns = self.pattern_miner.observe(block)
                if report is not None:
                    report.patterns = patterns
            # Deliberate partial drain, one popped block per fully
            # accepted replay: a failure mid-catch-up leaves exactly
            # the unprocessed tail pending — a consistent, retryable
            # checkpoint state, not a corrupted one.
            self._pending.pop(0)  # demonlint: disable=DML018 (popped only after every engine accepted this block; the remaining queue is the well-defined not-yet-maintained tail)
            self._expire_cold(block.block_id)
            maintained += 1
        return maintained

    def _expire_cold(self, block_id: int) -> None:
        """Tier down the block that just slid out of an MRW window.

        Under the most recent window option block ``block_id - w`` can
        no longer enter any selection, so the backend is notified (the
        tiered backend demotes the block's dense columns to its
        compressed tier; the base-class default is a no-op) and its
        TID-lists are re-encoded in place (every backend — the counting
        kernels work directly on the compressed forms, so byte
        accounting stays backend-independent).  Both steps are
        deterministic functions of block content, keeping checkpoints
        byte-identical across placements.

        Called per block from the catch-up path *after* that block's
        maintenance, so a deferring scheduler can never tier down a
        block it still owes maintenance on.
        """
        if not isinstance(self.span, MostRecentWindow):
            return
        expired = block_id - self.span.w
        if expired < 1:
            return
        if self.backend is not None:
            self.backend.notify_expired([expired])
        context = getattr(self.maintainer, "context", None)
        tidlists = getattr(context, "tidlists", None)
        if isinstance(tidlists, SupportsCompressBlock):
            tidlists.compress_block(expired)

    def ingest(
        self,
        records: Any,
        label: str = "",
        metadata: dict[str, Any] | None = None,
    ) -> MonitorReport:
        """Stream arriving records in as block ``t + 1`` and observe it.

        This is the streaming ingest spine: the record iterable is
        consumed exactly once, straight into the session's configured
        backend (or into a plain in-memory block when no backend is
        set), and the resulting handle is fed to :meth:`observe`.
        """
        before = self.telemetry.snapshot()
        block_id = self.t + 1
        if self.backend is not None:
            block: Block[T] = self.backend.ingest(
                block_id, records, label=label, metadata=metadata
            )
        else:
            block = make_block(block_id, records, label=label, metadata=metadata)
        report = self.observe(block)
        # The report's delta covers the whole arrival — the backend
        # write charged by ingest as well as the observation.
        report.telemetry = self.telemetry.delta_since(before)
        return report

    def discovered_patterns(self, min_length: int = 2) -> list[CompactSequence]:
        """Compact sequences found so far (empty without a miner).

        A synchronization point: deferred maintenance runs first so the
        miner has seen every ingested block.
        """
        if self.pattern_miner is None:
            return []
        self.maintain()
        return self.pattern_miner.distinct_sequences(min_length=min_length)

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """The self-contained checkpoint payload for this session.

        It embeds the maintainer (with its storage context — the
        reproduction's stand-in for durable block storage), the
        engine's full collection of models, the pattern miner
        (deviation matrix and sequences), the optional snapshot, the
        scheduler state with its pending (ingested but not yet
        maintained) blocks, and the telemetry totals.

        Checkpointing does *not* flush deferred maintenance — a killed
        scheduled session restores with its pending queue intact and
        catches up on the next trigger or read.
        """
        from repro.storage.persist import save_model

        engine_kind = "none"
        engine_state: dict[str, Any] | None = None
        if isinstance(self._engine, GEMM):
            engine_kind = "gemm"
            engine_state = self._engine.state_dict()
        elif isinstance(self._engine, UnrestrictedWindowMaintainer):
            engine_kind = "uw"
            engine_state = self._engine.state_dict()
        return {
            "format": CHECKPOINT_FORMAT,
            "name": self.name,
            "span": self.span,
            "bss": self.bss,
            "maintainer": (
                save_model(self.maintainer)
                if self.maintainer is not None
                else None
            ),
            "engine": {"kind": engine_kind, "state": engine_state},
            "pattern_miner": (
                save_model(self.pattern_miner)
                if self.pattern_miner is not None
                else None
            ),
            "snapshot": (
                save_model(self.snapshot) if self.snapshot is not None else None
            ),
            "backend": (
                self.backend.spec() if self.backend is not None else None
            ),
            "scheduler": self.scheduler.state_dict(),
            "pending": [save_model(block) for block in self._pending],
            "telemetry": self.telemetry.state_dict(),
        }

    def load_state_dict(
        self, state: dict[str, Any], *, restore_telemetry: bool = True
    ) -> None:
        """Apply the mutable parts of a checkpoint payload.

        The constructor-shaped parts (span, BSS, maintainer, miner) are
        consumed by :meth:`restore`, which builds the session first;
        this method restores what accumulates during a run: the
        snapshot, the engine state (GEMM's collection of models), and —
        unless the caller supplied their own spine — telemetry totals.
        """
        from repro.storage.persist import load_model

        if state["snapshot"] is not None:
            self.snapshot = load_model(state["snapshot"])
            if self.backend is not None:
                # Checkpointed blocks deserialize onto in-memory data;
                # re-home them so the restored snapshot lives on the
                # same backend the session runs on.
                adopted: Snapshot[T] = Snapshot()
                for block in self.snapshot:
                    adopted.extend(self.backend.adopt(block))
                self.snapshot = adopted
        engine_state = state["engine"]["state"]
        if self._engine is not None and engine_state is not None:
            self._engine.load_state_dict(engine_state)
            # load_state_dict drops any live pool handle (checkpoints
            # never carry one); a parallel session rebinds its own.
            if self._pool is not None and isinstance(self._engine, GEMM):
                self._engine.bind_pool(self._pool)
        # Scheduler state transfers only between schedulers of the same
        # kind: restoring an eager session onto a deviation scheduler
        # (or vice versa) starts the new policy from scratch, but the
        # pending queue below is policy-independent and always carries.
        scheduler_state = state.get("scheduler")
        if scheduler_state is not None:
            spec = scheduler_state.get("spec") or {}
            if spec.get("kind") == self.scheduler.kind:
                self.scheduler.load_state_dict(scheduler_state)
        self._pending = []
        by_id: dict[int, Block[T]] = {}
        if self.snapshot is not None:
            by_id = {block.block_id: block for block in self.snapshot}
        for blob in state.get("pending") or []:
            pending_block: Block[T] = load_model(blob)
            if pending_block.block_id in by_id:
                # The snapshot adoption above already re-homed this
                # block onto the live backend; reuse that handle.
                pending_block = by_id[pending_block.block_id]
            elif self.backend is not None:
                pending_block = self.backend.adopt(pending_block)
            self._pending.append(pending_block)
        if restore_telemetry:
            self.telemetry.load_state_dict(state["telemetry"])

    def checkpoint(self, vault: ModelVault | None = None) -> int:
        """Persist the whole session into a vault; returns bytes written.

        BSS predicates must be picklable — bit-based sequences always
        are; ad-hoc lambda predicates are not and raise
        :class:`CheckpointError`.
        """
        target = vault if vault is not None else self.vault
        if target is None:
            raise CheckpointError(
                "no vault to checkpoint into: construct the session with "
                "vault=... or pass one to checkpoint()"
            )
        with self.telemetry.phase("session.checkpoint"):
            # Counted before the totals are serialized so a restored
            # session knows how many checkpoints produced it.
            self.telemetry.increment("session.checkpoints")
            payload = self.state_dict()
            try:
                nbytes = target.put(checkpoint_key(self.name), payload)
            except CheckpointError:
                raise
            except Exception as exc:
                raise CheckpointError(
                    f"cannot serialize session {self.name!r}: {exc}"
                ) from exc
        return nbytes

    @classmethod
    def restore(
        cls,
        vault: ModelVault,
        name: str = "session",
        telemetry: Telemetry | None = None,
        backend: BlockBackend | str | dict[str, Any] | None = None,
        workers: int | None = None,
        scheduler: MaintenanceScheduler | str | dict[str, Any] | None = None,
    ) -> "MiningSession[Any, Any]":
        """Rebuild a session from its checkpoint and resume mid-stream.

        The restored session continues exactly where the checkpointed
        one stopped: the next :meth:`observe` must receive block
        ``t + 1``, and the models it produces equal those of an
        uninterrupted run (the kill/restore equivalence tests assert
        this for every engine and BSS combination).

        The checkpoint records which block backend the session ran on;
        by default the session is restored onto a backend rebuilt from
        that spec (and any retained snapshot is re-adopted onto it).
        Pass ``backend=...`` to restore onto a different one.

        ``workers`` is execution config and is never checkpointed:
        the restored session uses the value given here (or the
        ``DEMON_WORKERS`` ambient default).

        The maintenance scheduler *is* checkpointed: by default the
        session restores the same scheduling policy (and its drift
        references) the checkpointed run used, along with any blocks
        ingested but not yet maintained.  Pass ``scheduler=...`` to
        switch policy on restore — the pending queue still carries
        over, so no maintenance is ever lost.
        """
        key = checkpoint_key(name)
        if key not in vault:
            raise CheckpointError(
                f"vault holds no checkpoint named {name!r} "
                f"(keys: {sorted(map(repr, vault.keys()))})"
            )
        from repro.storage.persist import load_model

        payload = vault.get(key)
        fmt = payload.get("format")
        if fmt != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"checkpoint {name!r} has format {fmt!r}; "
                f"this build reads format {CHECKPOINT_FORMAT}"
            )
        maintainer = (
            load_model(payload["maintainer"])
            if payload["maintainer"] is not None
            else None
        )
        pattern_miner = (
            load_model(payload["pattern_miner"])
            if payload["pattern_miner"] is not None
            else None
        )
        if backend is None:
            # Format-1 checkpoints written before backends existed have
            # no "backend" entry; they restore onto the ambient default.
            backend = payload.get("backend")
        if scheduler is None:
            # Likewise pre-scheduler checkpoints carry no "scheduler"
            # entry and restore onto the ambient default policy.
            scheduler_state = payload.get("scheduler")
            if scheduler_state is not None:
                scheduler = scheduler_state.get("spec")
        owns_backend = not isinstance(backend, BlockBackend)
        session: MiningSession[Any, Any] = cls(
            maintainer=maintainer,
            span=payload["span"],
            bss=payload["bss"],
            pattern_miner=pattern_miner,
            vault=vault,
            telemetry=telemetry,
            backend=backend,
            workers=workers,
            scheduler=scheduler,
            name=name,
        )
        try:
            with session.telemetry.phase("session.restore"):
                # Continue checkpointed telemetry totals only on a fresh
                # spine (an explicitly supplied spine is left untouched).
                session.load_state_dict(
                    payload, restore_telemetry=telemetry is None
                )
        except BaseException:
            # A corrupt payload must not leak the backend this restore
            # built from the checkpoint spec (an mmap backend holds a
            # temp directory until closed).  Caller-owned backends are
            # left alone.
            if owns_backend and session.backend is not None:
                session.backend.close()
            raise
        session.telemetry.increment("session.restores")
        return session
