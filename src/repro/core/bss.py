"""Block selection sequences (paper §2.3) and their window operations.

A block selection sequence (BSS) is a bit sequence selecting which
blocks participate in the mined model:

* A **window-independent** BSS ``<b1, ..., bt, ...>`` assigns one bit to
  every block identifier; bit ``bi`` is fixed to block ``Di`` forever
  ("all blocks added on Mondays").
* A **window-relative** BSS ``<b1, ..., bw>`` assigns one bit to each
  *position* inside the most recent window of size ``w``; the selection
  moves with the window ("every other day within the past 30 days").

GEMM (§3.2) needs two derived sequences:

* the ``k``-**projection** of a window-independent BSS (§3.2.1): keep
  bits ``b_{k+1} .. b_w`` in place and zero the first ``k`` positions,
  describing the overlap of a future window with the current one;
* the ``k``-**right-shift** of a window-relative BSS (§3.2.2): slide the
  pattern forward by ``k`` blocks, zero-padding on the left and
  truncating what slides past position ``w``.
"""

from __future__ import annotations

import numbers
from collections.abc import Callable, Iterable, Sequence


def _validate_bits(bits: Iterable[int]) -> tuple[int, ...]:
    """Validate a strict 0/1 bit vector (Definition 2.1, §2.3).

    Bits must be plain integers: bools and floats are rejected rather
    than coerced, because ``int(0.9) == 0`` and ``int(True) == 1``
    silently change which blocks a model is extracted from.  The same
    invariant is enforced statically by demonlint rule DML003.
    """
    validated: list[int] = []
    for b in bits:
        if isinstance(b, bool) or not isinstance(b, numbers.Integral):
            raise TypeError(
                f"BSS bits must be plain ints 0 or 1, got {b!r} "
                f"({type(b).__name__}); bools/floats/strings are not bits"
            )
        value = int(b)
        if value not in (0, 1):
            raise ValueError(f"BSS bits must be 0 or 1, got {value}")
        validated.append(value)
    return tuple(validated)


class WindowIndependentBSS:
    """A window-independent block selection sequence.

    The sequence conceptually extends forever; it is represented by an
    explicit finite prefix plus a rule (default bit or a predicate on the
    block identifier) for positions beyond the prefix.

    Args:
        bits: Explicit prefix ``<b1, b2, ...>`` (1-based positions).
        default: Bit used for positions past the explicit prefix when no
            ``predicate`` is given.
        predicate: Optional rule mapping a block identifier to a bool;
            it overrides ``default`` beyond the prefix, which lets
            calendar selections ("every Monday") run unbounded.
    """

    def __init__(
        self,
        bits: Iterable[int] = (),
        default: int = 1,
        predicate: Callable[[int], bool] | None = None,
    ) -> None:
        self._bits = _validate_bits(bits)
        if isinstance(default, bool) or default not in (0, 1):
            raise ValueError(f"default bit must be the int 0 or 1, got {default!r}")
        self._default = default
        self._predicate = predicate

    @classmethod
    def select_all(cls) -> "WindowIndependentBSS":
        """The trivial BSS ``<1, 1, 1, ...>`` selecting every block."""
        return cls(default=1)

    @classmethod
    def from_predicate(cls, predicate: Callable[[int], bool]) -> "WindowIndependentBSS":
        """A BSS defined entirely by a predicate on block identifiers."""
        return cls(bits=(), predicate=predicate)

    def bit(self, block_id: int) -> int:
        """Return bit ``b_{block_id}`` (1-based)."""
        if block_id < 1:
            raise IndexError(f"block identifiers start at 1, got {block_id}")
        if block_id <= len(self._bits):
            return self._bits[block_id - 1]
        if self._predicate is not None:
            return 1 if self._predicate(block_id) else 0
        return self._default

    def selects(self, block_id: int) -> bool:
        """Whether block ``D_{block_id}`` participates in the model."""
        return self.bit(block_id) == 1

    def selected_ids(self, lo: int, hi: int) -> list[int]:
        """Identifiers of the selected blocks in ``D[lo, hi]`` inclusive."""
        return [i for i in range(lo, hi + 1) if self.selects(i)]

    def prefix(self, length: int) -> tuple[int, ...]:
        """The first ``length`` bits as an explicit tuple."""
        return tuple(self.bit(i) for i in range(1, length + 1))

    def project(self, t: int, k: int, w: int) -> tuple[int, ...]:
        """The ``k``-projected sequence ``b^w_k`` of §3.2.1.

        With the current window written as ``D[1, w]`` (the paper sets
        ``t = w`` without loss of generality), the projection keeps bits
        at positions ``k+1 .. w`` and zeroes positions ``1 .. k``.  For a
        general latest identifier ``t`` the window is ``D[t-w+1, t]``
        and the bit at window position ``i`` is the global bit
        ``b_{t-w+i}``.

        Args:
            t: Identifier of the latest block (window is D[t-w+1, t]).
            k: Number of leading positions to zero, ``0 <= k < w``.
            w: Window size.

        Returns:
            A length-``w`` tuple of bits.
        """
        if not 0 <= k < w:
            raise ValueError(f"projection requires 0 <= k < w, got k={k}, w={w}")
        if t < w:
            raise ValueError(f"projection assumes t >= w, got t={t}, w={w}")
        start = t - w  # global id of window position 1 is start + 1
        return tuple(
            0 if i <= k else self.bit(start + i) for i in range(1, w + 1)
        )

    def __repr__(self) -> str:
        shown = "".join(str(b) for b in self._bits) or "<rule>"
        return f"WindowIndependentBSS({shown}..., default={self._default})"


class WindowRelativeBSS:
    """A window-relative block selection sequence ``<b1, ..., bw>``.

    Position 1 refers to the *oldest* block in the most recent window
    and position ``w`` to the newest, matching Definition 2.1.
    """

    def __init__(self, bits: Iterable[int]) -> None:
        self._bits = _validate_bits(bits)
        if not self._bits:
            raise ValueError("a window-relative BSS needs at least one bit")

    @classmethod
    def select_all(cls, w: int) -> "WindowRelativeBSS":
        """The BSS ``<1, ..., 1>`` of length ``w``."""
        return cls([1] * w)

    @classmethod
    def every_kth(cls, w: int, k: int, offset: int = 0) -> "WindowRelativeBSS":
        """Select every ``k``-th position starting at ``offset`` (0-based).

        ``every_kth(28, 7)`` expresses "the same day of the week as the
        window start within the past 28 days" (paper §2.3, example 3).
        """
        if k < 1:
            raise ValueError(f"period must be >= 1, got {k}")
        return cls([1 if (i - offset) % k == 0 and i >= offset else 0 for i in range(w)])

    @property
    def w(self) -> int:
        """The window size this BSS is defined for."""
        return len(self._bits)

    @property
    def bits(self) -> tuple[int, ...]:
        return self._bits

    def bit(self, position: int) -> int:
        """Return bit ``b_position`` (1-based window position)."""
        if not 1 <= position <= self.w:
            raise IndexError(f"position {position} outside window of size {self.w}")
        return self._bits[position - 1]

    def selects(self, position: int) -> bool:
        """Whether the window position participates in the model."""
        return self.bit(position) == 1

    def selected_ids(self, window_start: int) -> list[int]:
        """Global block identifiers selected when the window starts there.

        Args:
            window_start: Identifier of the window's oldest block, i.e.
                the window is ``D[window_start, window_start + w - 1]``.
        """
        return [
            window_start + i for i in range(self.w) if self._bits[i] == 1
        ]

    def right_shift(self, k: int) -> tuple[int, ...]:
        """The ``k``-right-shifted sequence of §3.2.2.

        Slides the pattern forward by ``k`` positions, zero-pads the
        leftmost ``k`` bits, and truncates bits that slide past ``w``.
        """
        if not 0 <= k < self.w:
            raise ValueError(f"right-shift requires 0 <= k < w, got k={k}, w={self.w}")
        return tuple(
            0 if i <= k else self._bits[i - k - 1] for i in range(1, self.w + 1)
        )

    def __repr__(self) -> str:
        return f"WindowRelativeBSS({''.join(str(b) for b in self._bits)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WindowRelativeBSS):
            return NotImplemented
        return self._bits == other._bits

    def __hash__(self) -> int:
        return hash(self._bits)


def weekday_bss(weekday: int, block_weekday: Callable[[int], int]) -> WindowIndependentBSS:
    """A window-independent BSS selecting blocks added on one weekday.

    Args:
        weekday: Day of week to select, 0=Monday .. 6=Sunday.
        block_weekday: Maps a block identifier to its day of week.
    """
    if not 0 <= weekday <= 6:
        raise ValueError(f"weekday must be in 0..6, got {weekday}")
    return WindowIndependentBSS.from_predicate(
        lambda block_id: block_weekday(block_id) == weekday
    )


def bits_key(bits: Sequence[int]) -> tuple[int, ...]:
    """Canonical hashable key for a bit sequence.

    GEMM deduplicates models whose effective BSS bits are identical
    (paper §3.2.1: "some of the models simultaneously maintained might
    be identical"); this key is what the dedup map is indexed by.
    """
    return tuple(int(b) for b in bits)
