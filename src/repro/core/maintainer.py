"""The generic incremental-maintainer interface (the paper's ``A_M``).

GEMM (§3.2) is parameterized by a class of models ``M`` and an
incremental model maintenance algorithm ``A_M`` for the unrestricted
window option.  ``A_M`` supports exactly two operations in the paper:

* ``A_M(D, φ)`` — build a model from a dataset (the base case), and
* ``A_M(m, Dj)`` — update model ``m`` with a newly added block ``Dj``.

:class:`IncrementalModelMaintainer` captures that contract plus the two
bookkeeping operations a generic driver needs (``empty_model`` for a
BSS that has selected nothing yet, and ``clone`` because GEMM evolves
several divergent copies of the same model).  Model classes that are
also maintainable under block *deletion* (§3.2.4) additionally
implement :class:`DeletableModelMaintainer`, which enables the direct
add+delete alternative ``A^u_M`` that the paper compares GEMM against.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable
from typing import Any, Generic, TypeVar, cast

from repro.core.blocks import Block
from repro.core.bss import WindowIndependentBSS
from repro.storage.persist import load_model, save_model

TModel = TypeVar("TModel")
T = TypeVar("T")


class IncrementalModelMaintainer(ABC, Generic[TModel, T]):
    """Abstract incremental maintainer ``A_M`` for one class of models."""

    @abstractmethod
    def empty_model(self) -> TModel:
        """A model over the empty dataset (no blocks selected yet)."""

    @abstractmethod
    def build(self, blocks: Iterable[Block[T]]) -> TModel:
        """``A_M(D, φ)``: construct a model from scratch over ``blocks``."""

    @abstractmethod
    def add_block(self, model: TModel, block: Block[T]) -> TModel:
        """``A_M(m, Dj)``: update ``model`` with the new block.

        Implementations may mutate and return ``model``; callers that
        need the old model afterwards must :meth:`clone` first.
        """

    @abstractmethod
    def clone(self, model: TModel) -> TModel:
        """An independent deep copy of ``model``."""


class DeletableModelMaintainer(IncrementalModelMaintainer[TModel, T]):
    """A maintainer whose models also support block deletion (§3.2.4)."""

    @abstractmethod
    def delete_block(self, model: TModel, block: Block[T]) -> TModel:
        """Update ``model`` to reflect removal of a previously added block."""


class UnrestrictedWindowMaintainer(Generic[TModel, T]):
    """UW-option driver: one model over all selected blocks so far (§3.1).

    Feeds every arriving block through a window-independent BSS: when
    the block's bit is 1 the model is updated via ``A_M``; when it is 0
    the current model simply carries over to the new snapshot.

    Args:
        maintainer: The incremental algorithm ``A_M``.
        bss: Window-independent block selection sequence; defaults to
            selecting every block.
    """

    def __init__(
        self,
        maintainer: IncrementalModelMaintainer[TModel, T],
        bss: WindowIndependentBSS | None = None,
    ) -> None:
        self.maintainer = maintainer
        self.bss = bss if bss is not None else WindowIndependentBSS.select_all()
        self._model = maintainer.empty_model()
        self._t = 0
        self._selected: list[int] = []

    @property
    def t(self) -> int:
        """Identifier of the latest observed block."""
        return self._t

    @property
    def model(self) -> TModel:
        """The current model ``m(D[1, t], b)``."""
        return self._model

    @property
    def selected_block_ids(self) -> list[int]:
        """Identifiers of the blocks the current model was extracted from."""
        return list(self._selected)

    def observe(self, block: Block[T]) -> TModel:
        """Process the arrival of the next block and return the new model."""
        expected = self._t + 1
        if block.block_id != expected:
            raise ValueError(
                f"systematic evolution requires block id {expected}, "
                f"got {block.block_id}"
            )
        self._t = block.block_id
        if self.bss.selects(block.block_id):
            self._model = self.maintainer.add_block(self._model, block)
            self._selected.append(block.block_id)
        return self._model

    # ------------------------------------------------------------------
    # Checkpointing (the session layer's engine contract)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """Serializable snapshot: clock, selection, serialized model."""
        return {
            "t": self._t,
            "selected": list(self._selected),
            "model": save_model(self._model),
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore the state saved by :meth:`state_dict`."""
        self._t = cast(int, state["t"])
        self._selected = list(cast("list[int]", state["selected"]))
        self._model = cast("TModel", load_model(cast(bytes, state["model"])))
