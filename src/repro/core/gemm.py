"""GEMM — the GEneric Model Maintainer for the most recent window (§3.2).

GEMM turns any unrestricted-window incremental maintainer ``A_M`` into a
most-recent-window maintainer under either kind of block selection
sequence.  The idea (Algorithm 3.1): the window ``D[t-w+1, t]`` of size
``w`` evolves in ``w`` steps, so alongside the *current* model GEMM
keeps one model for the overlapping prefix of each of the ``w - 1``
*future* windows.  When block ``D_{t+1}`` arrives:

* every kept model is extended with the new block if its (projected or
  right-shifted) BSS selects it, otherwise it carries over unchanged;
* the model that covered the full old window is retired;
* a fresh model covering only ``D_{t+1}`` joins as the prefix of the
  farthest future window.

The only *time-critical* update is the one that yields the new current
model — the rest can happen off-line (§3.2.3) — so :meth:`GEMM.observe`
reports which updates were on the critical path and how many ``A_M``
invocations each category cost.

Deduplication: models whose effective selected-block sets coincide are
stored once (the paper notes the actual number of distinct models may
be less than ``w``).  GEMM keys its slot table by the frozen set of
selected global block identifiers, cloning only when two slots that
shared a model diverge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generic, Sequence, TypeVar, cast

from repro.core.blocks import Block
from repro.core.bss import WindowIndependentBSS, WindowRelativeBSS
from repro.core.maintainer import IncrementalModelMaintainer
from repro.storage.persist import (
    load_model,
    register_vault_namespace,
    save_model,
)
from repro.storage.telemetry import Telemetry

if TYPE_CHECKING:
    from repro.parallel.pool import WorkerPool
    from repro.storage.persist import ModelVault

TModel = TypeVar("TModel")
T = TypeVar("T")

BSSType = WindowIndependentBSS | WindowRelativeBSS

#: Frozen set of global block ids selected into a model.
ModelKey = frozenset[int]

EMPTY_KEY: ModelKey = frozenset()

#: Vault-key namespace for §3.2.3 model spills.  Keys are
#: ``(GEMM_SPILL_NAMESPACE, instance_name, sorted_block_ids)`` so several
#: GEMMs and the session-checkpoint tenant can share one vault.
GEMM_SPILL_NAMESPACE = register_vault_namespace("gemm-spill")


@dataclass
class GEMMUpdateReport:
    """Accounting for one :meth:`GEMM.observe` call.

    Attributes:
        t: Identifier of the block that was just added.
        critical_invocations: ``A_M`` invocations on the response-time
            critical path (producing the new current model); 0 or 1
            per :meth:`GEMM.observe`, up to the run length for a
            batched :meth:`GEMM.observe_run` catch-up.
        offline_invocations: ``A_M`` invocations that can run off-line.
        distinct_models: Number of distinct models stored after the
            update (≤ w thanks to deduplication).
        critical_seconds: Wall-clock spent on the critical path.
        offline_seconds: Wall-clock spent on off-line updates.
    """

    t: int
    critical_invocations: int = 0
    offline_invocations: int = 0
    distinct_models: int = 0
    critical_seconds: float = 0.0
    offline_seconds: float = 0.0


@dataclass
class _SlotPlan:
    """Where new slot k's model comes from during one window slide."""

    source_key: ModelKey
    extend: bool  # whether the new block is selected into this slot
    new_key: ModelKey = field(default=EMPTY_KEY)


class GEMM(Generic[TModel, T]):
    """Most-recent-window model maintenance via Algorithm 3.1.

    Args:
        maintainer: The unrestricted-window incremental algorithm
            ``A_M`` instantiating GEMM.
        w: Window size in blocks.
        bss: Block selection sequence — either window-independent
            (projection operation applies) or window-relative
            (right-shift operation applies).  Defaults to selecting
            every block in the window.
        vault: Optional shared model vault for §3.2.3 spills.
        name: Instance name embedded in spill keys; give each GEMM
            sharing one vault a distinct name.
    """

    def __init__(
        self,
        maintainer: IncrementalModelMaintainer[TModel, T],
        w: int,
        bss: BSSType | None = None,
        vault: ModelVault | None = None,
        name: str = "gemm",
    ) -> None:
        if w < 1:
            raise ValueError(f"window size must be >= 1, got {w}")
        if isinstance(bss, WindowRelativeBSS) and bss.w != w:
            raise ValueError(
                f"window-relative BSS has length {bss.w} but window size is {w}"
            )
        self.maintainer = maintainer
        self.w = w
        self.bss = bss if bss is not None else WindowIndependentBSS.select_all()
        #: Optional :class:`~repro.storage.persist.ModelVault`.  When
        #: set, only the current model (and the empty model) stay in
        #: memory; the other future-window models live serialized in
        #: the vault — the paper's §3.2.3 disk-resident collection.
        self.vault = vault
        self.name = name
        #: Instrumentation spine; a session rebinds this onto its own.
        self.telemetry = Telemetry()
        self._t = 0
        # Slot k holds the model for the overlapping prefix of future
        # window f_k; slot 0 is the current model.  Slots store keys into
        # the dedup table ``_models`` (or the vault).
        self._slots: list[ModelKey] = [EMPTY_KEY] * w
        self._models: dict[ModelKey, TModel] = {EMPTY_KEY: maintainer.empty_model()}
        # Keys this GEMM has spilled to the vault.  Stale ones are
        # deleted individually (never via a vault-wide retain) so other
        # tenants of the same vault — e.g. session checkpoints — survive.
        self._spilled: set[ModelKey] = set()
        # Execution wiring, never persisted: checkpoint bytes must not
        # depend on the worker count (see bind_pool).
        self._pool: WorkerPool | None = None

    def bind_pool(self, pool: "WorkerPool | None") -> None:
        """Attach a worker pool for §3.2.3's off-line updates.

        With more than one worker, :meth:`observe` fans the off-line
        slot updates out across processes (each slot's ``A_M``
        invocation is independent given the shared new block) and
        adopts the returned model pickles byte-for-byte.  The critical
        update always runs in-process — it is the response-time path.
        ``None`` detaches.  The pool is deliberately not part of
        :meth:`state_dict`.
        """
        self._pool = pool

    @property
    def t(self) -> int:
        """Identifier of the latest observed block."""
        return self._t

    @property
    def window_start(self) -> int:
        """Identifier of the oldest block in the current window."""
        return max(1, self._t - self.w + 1)

    @property
    def is_warmed_up(self) -> bool:
        """Whether the window has reached its full size ``w``."""
        return self._t >= self.w

    def current_model(self) -> TModel:
        """The required model on the current window w.r.t. the BSS."""
        return self._models[self._slots[0]]

    def current_selection(self) -> ModelKey:
        """Global block identifiers the current model was extracted from."""
        return self._slots[0]

    def model_for_slot(self, k: int) -> TModel:
        """The model kept for the prefix of future window ``f_k``.

        With a vault configured, non-current models are fetched from it
        (each fetch yields a private deserialized copy).
        """
        if not 0 <= k < self.w:
            raise IndexError(f"slot index {k} outside 0..{self.w - 1}")
        return self._load(self._slots[k])

    def _spill_key(self, key: ModelKey) -> tuple[str, str, tuple[int, ...]]:
        """Namespaced vault key for one spilled model (DML011 hygiene)."""
        return (GEMM_SPILL_NAMESPACE, self.name, tuple(sorted(key)))

    def _load(self, key: ModelKey) -> TModel:
        """A model by key — from memory, falling back to the vault."""
        if key in self._models:
            return self._models[key]
        if self.vault is not None and self._spill_key(key) in self.vault:
            return cast(TModel, self.vault.get(self._spill_key(key)))
        raise KeyError(f"no model stored for key {sorted(key)}")

    def distinct_model_count(self) -> int:
        """Number of distinct (deduplicated) models currently stored."""
        return len(set(self._slots))

    def _bit_for_slot(self, k: int, new_block_id: int, window_start: int) -> bool:
        """Whether the arriving block is selected into slot ``k``'s model.

        Slot ``k``'s model covers the prefix of the future window that
        starts at ``window_start + k``.  For a window-independent BSS the
        global bit of the new block applies to every slot (the
        projection operation never re-indexes bits, §3.2.1).  For a
        window-relative BSS the new block sits at position
        ``new_block_id - (window_start + k) + 1`` within that future
        window, which is exactly what the k-right-shift computes
        (§3.2.2).
        """
        if isinstance(self.bss, WindowIndependentBSS):
            return self.bss.selects(new_block_id)
        position = new_block_id - (window_start + k) + 1
        if not 1 <= position <= self.w:
            return False
        return self.bss.selects(position)

    def observe(self, block: Block[T]) -> GEMMUpdateReport:
        """Process the arrival of the next block (Algorithm 3.1).

        Returns a :class:`GEMMUpdateReport`; the new current model is
        available via :meth:`current_model` immediately afterwards.
        """
        expected = self._t + 1
        if block.block_id != expected:
            raise ValueError(
                f"systematic evolution requires block id {expected}, "
                f"got {block.block_id}"
            )
        new_t = block.block_id
        sliding = self._t >= self.w  # window slides only once it is full
        # Window start used for position arithmetic is that of the *new*
        # snapshot (the windows the slots will describe after this step).
        new_window_start = max(1, new_t - self.w + 1)

        plans = self._plan_slots(block, sliding, new_window_start)
        report = GEMMUpdateReport(t=new_t)
        new_models: dict[ModelKey, TModel] = {EMPTY_KEY: self._models[EMPTY_KEY]}

        # Execute the time-critical update (new slot 0) first, then the
        # off-line ones, metering each category separately (§3.2.3).
        with self.telemetry.phase("gemm.critical") as critical_span:
            invocations = self._realize(plans[0], block, new_models)
        report.critical_seconds = critical_span.seconds
        report.critical_invocations = invocations
        self.telemetry.increment("gemm.invocations.critical", invocations)

        with self.telemetry.phase("gemm.offline") as offline_span:
            if self._pool is not None and self._pool.workers > 1:
                report.offline_invocations = self._realize_offline_parallel(
                    plans[1:], block, new_models
                )
            else:
                for plan in plans[1:]:
                    report.offline_invocations += self._realize(
                        plan, block, new_models
                    )
        report.offline_seconds = offline_span.seconds
        self.telemetry.increment("gemm.invocations.offline", report.offline_invocations)

        self._commit(new_t, [plan.new_key for plan in plans], new_models)
        report.distinct_models = self.distinct_model_count()
        return report

    def _commit(
        self,
        new_t: int,
        new_slots: list[ModelKey],
        new_models: dict[ModelKey, TModel],
    ) -> None:
        """Install a fully-materialized new slot table atomically.

        Shared by the per-block :meth:`observe` and the batched
        :meth:`observe_run`; nothing before this point mutates the slot
        table or clock, so a failed update leaves the collection on the
        previous snapshot (DML018).
        """
        self._t = new_t
        self._slots = new_slots
        live_keys = set(self._slots) | {EMPTY_KEY}
        if self.vault is None:
            self._models = {key: new_models[key] for key in live_keys}
        else:
            # §3.2.3: only the current model stays in memory; the rest
            # of the collection goes to (simulated) disk.
            memory_keys = {self._slots[0], EMPTY_KEY}
            spilled = live_keys - memory_keys
            for key in spilled:
                self.vault.put(self._spill_key(key), new_models[key])
            for key in self._spilled - spilled:
                self.vault.delete(self._spill_key(key))
            self._spilled = spilled
            self._models = {key: new_models[key] for key in memory_keys}

    # ------------------------------------------------------------------
    # Batched catch-up (the scheduling layer's deferred-maintenance path)
    # ------------------------------------------------------------------

    def observe_run(self, blocks: "Sequence[Block[T]]") -> GEMMUpdateReport:
        """Catch up over a deferred run of blocks in one batched slide.

        Byte-identity with per-block :meth:`observe` calls: every model
        in the final collection is the product of exactly the
        ``build``/``add_block`` chain the eager path would have used
        for that key (a key's chain is a pure function of the BSS and
        the block ids, independent of *when* it runs).  What the batch
        saves is the **retired intermediates**: models the eager path
        materializes for windows that slide entirely past within the
        run are planned here but never realized — that skipped ``A_M``
        work is where the deferred-maintenance savings come from.

        The critical phase covers the new current model's chain (it is
        the longest, so its in-process materialization also registers
        every selected pending block with the maintainer's storage
        context); the remaining final slots' chains are off-line work
        and fan out across the bound worker pool when one is attached.

        Pending blocks that no final model selects (expired within the
        run, or masked by a 0-bit) are never fed to ``A_M`` at all —
        but every block is still registered with the maintainer's
        storage context in arrival order, so block stores, TID-lists,
        and their tier bookkeeping end up identical to an eager run's.
        """
        if not blocks:
            return GEMMUpdateReport(
                t=self._t, distinct_models=self.distinct_model_count()
            )
        # --- plan: simulate the slot table across the whole run, and
        # record each fresh key's parentage (source key + the block it
        # was extended with) so final models can be chained backwards.
        parents: dict[ModelKey, tuple[ModelKey, Block[T]]] = {}
        slots = list(self._slots)
        t = self._t
        for block in blocks:
            expected = t + 1
            if block.block_id != expected:
                raise ValueError(
                    f"systematic evolution requires block id {expected}, "
                    f"got {block.block_id}"
                )
            sliding = t >= self.w
            new_window_start = max(1, block.block_id - self.w + 1)
            new_slots = []
            for k in range(self.w):
                if sliding:
                    source = slots[k + 1] if k + 1 < self.w else EMPTY_KEY
                else:
                    source = slots[k]
                future_start = new_window_start + k
                covers = future_start <= block.block_id
                extend = covers and self._bit_for_slot(
                    k, block.block_id, new_window_start
                )
                new_key = source | {block.block_id} if extend else source
                if extend and new_key not in parents:
                    parents[new_key] = (source, block)
                new_slots.append(new_key)
            slots = new_slots
            t = block.block_id

        # Eager maintenance registers every arriving block (its TID-lists
        # are built when A_M first counts over it).  The batch must match
        # that even for blocks whose windows slide entirely past within
        # the run: registration is what lets the expiry path re-encode a
        # skipped block's TID-lists, and what keeps its data reachable in
        # the backends' weak indices.  Arrival order, after the whole run
        # validated — a rejected id mutates nothing (DML018).
        register = getattr(self.maintainer, "register_block", None)
        if callable(register):
            for block in blocks:
                register(block)

        report = GEMMUpdateReport(t=t)
        # Chain materialization memo; ancestors realized for one final
        # slot are shared (cloned at use) by every chain through them.
        realized: dict[ModelKey, TModel] = {}

        with self.telemetry.phase("gemm.critical") as critical_span:
            report.critical_invocations = self._materialize_chain(
                slots[0], parents, realized
            )
        report.critical_seconds = critical_span.seconds
        self.telemetry.increment(
            "gemm.invocations.critical", report.critical_invocations
        )

        with self.telemetry.phase("gemm.offline") as offline_span:
            if self._pool is not None and self._pool.workers > 1:
                report.offline_invocations = self._offline_chains_parallel(
                    slots, parents, realized
                )
            else:
                for key in slots[1:]:
                    report.offline_invocations += self._materialize_chain(
                        key, parents, realized
                    )
        report.offline_seconds = offline_span.seconds
        self.telemetry.increment(
            "gemm.invocations.offline", report.offline_invocations
        )

        new_models: dict[ModelKey, TModel] = {
            EMPTY_KEY: self._models[EMPTY_KEY]
        }
        for key in slots:
            if key not in new_models:
                # Carried-over keys (no chain) load from the existing
                # collection — same object sharing as eager carry-over.
                new_models[key] = (
                    realized[key] if key in realized else self._load(key)
                )
        self._commit(t, slots, new_models)
        report.distinct_models = self.distinct_model_count()
        return report

    def _unrealized_chain(
        self,
        key: ModelKey,
        parents: dict[ModelKey, tuple[ModelKey, Block[T]]],
        realized: dict[ModelKey, TModel],
    ) -> list[ModelKey]:
        """``key``'s not-yet-realized ancestry, deepest ancestor first.

        Keys in ``parents`` were created during the run being replayed
        (they contain new block ids), so the walk roots at a realized
        ancestor, a pre-existing model, or — via a build plan — EMPTY.
        """
        chain: list[ModelKey] = []
        while key in parents and key not in realized:
            chain.append(key)
            key = parents[key][0]
        chain.reverse()
        return chain

    def _materialize_chain(
        self,
        key: ModelKey,
        parents: dict[ModelKey, tuple[ModelKey, Block[T]]],
        realized: dict[ModelKey, TModel],
    ) -> int:
        """Realize ``key`` by replaying its chain; returns invocations."""
        invocations = 0
        for step in self._unrealized_chain(key, parents, realized):
            source_key, block = parents[step]
            if source_key == EMPTY_KEY:
                realized[step] = self.maintainer.build([block])
            else:
                if source_key in realized:
                    # A realized ancestor may feed several chains (and
                    # may itself be a final slot): clone before the
                    # possibly-mutating update, exactly as the eager
                    # path clones in-memory sources.
                    source = self.maintainer.clone(realized[source_key])
                else:
                    source = self._load(source_key)
                    if source_key in self._models:
                        source = self.maintainer.clone(source)
                realized[step] = self.maintainer.add_block(source, block)
            invocations += 1
        return invocations

    def _offline_chains_parallel(
        self,
        slots: list[ModelKey],
        parents: dict[ModelKey, tuple[ModelKey, Block[T]]],
        realized: dict[ModelKey, TModel],
    ) -> int:
        """Fan the off-line final chains out to the worker pool.

        Each worker task replays one final slot's whole chain (source
        model pickle + the pending-block refs to add, in order) and
        returns the final model's pickle, adopted verbatim.  Ancestors
        shared by more than one outstanding chain are materialized
        in-process first so no ``A_M`` invocation runs twice; blocks a
        worker will add are registered with the parent-side maintainer
        (idempotently, like the eager parallel path) so later in-process
        updates can count over them.
        """
        from repro.parallel.shards import block_ref, maintain_chain_shard

        pool = self._pool
        assert pool is not None
        token = self._worker_token()
        invocations = 0
        queued: list[ModelKey] = []
        for key in slots[1:]:
            if key in realized or key not in parents or key in queued:
                continue
            queued.append(key)
        if token is None or not queued:
            for key in slots[1:]:
                invocations += self._materialize_chain(key, parents, realized)
            return invocations
        # Ancestors appearing in more than one chain — including a
        # queued final sitting on another final's chain — are realized
        # in-process so workers never duplicate an invocation.
        uses: dict[ModelKey, int] = {}
        for key in queued:
            for step in self._unrealized_chain(key, parents, realized):
                uses[step] = uses.get(step, 0) + 1
        shared = [
            step
            for step, count in sorted(uses.items(), key=lambda item: len(item[0]))
            if count > 1
        ]
        for step in shared:
            invocations += self._materialize_chain(step, parents, realized)
        chains = {
            key: self._unrealized_chain(key, parents, realized)
            for key in queued
            if key not in realized
        }
        payloads = []
        shipped: list[tuple[ModelKey, int]] = []
        serial: list[ModelKey] = []
        register = getattr(self.maintainer, "register_block", None)
        for key, chain in chains.items():
            root_source = parents[chain[0]][0]
            history: tuple[Any, ...] = ()
            if token[0] == "spec":
                refs = self._history_refs(root_source)
                if refs is None:
                    # Source blocks unavailable (e.g. right after a
                    # restore): this chain cannot feed a replica.
                    serial.append(key)
                    continue
                history = tuple(refs)
            if root_source == EMPTY_KEY:
                source_blob = None
            elif root_source in realized:
                source_blob = save_model(realized[root_source])
            else:
                source_blob = save_model(self._load(root_source))
            new_refs = tuple(block_ref(parents[step][1]) for step in chain)
            if callable(register):
                for step in chain:
                    register(parents[step][1])
            payloads.append((token, source_blob, new_refs, history))
            shipped.append((key, len(chain)))
        for key in serial:
            invocations += self._materialize_chain(key, parents, realized)
        if not payloads:
            return invocations
        results = pool.run(maintain_chain_shard, payloads)
        diagnostics = getattr(self.maintainer, "diagnostics", None)
        for (key, chain_len), (blob, diag_entries) in zip(shipped, results):
            realized[key] = cast("TModel", load_model(blob))
            invocations += chain_len
            if diagnostics is not None:
                for channel, entry in diag_entries.items():
                    diagnostics.record(channel, entry)
        return invocations

    def _plan_slots(
        self, block: Block[T], sliding: bool, new_window_start: int
    ) -> list[_SlotPlan]:
        """Decide, per new slot, its source model and whether to extend it."""
        new_id = block.block_id
        plans: list[_SlotPlan] = []
        for k in range(self.w):
            if sliding:
                # New slot k descends from old slot k+1; the last slot is
                # the fresh model covering only the new block.
                source = self._slots[k + 1] if k + 1 < self.w else EMPTY_KEY
            else:
                # Warm-up: the window grows instead of sliding, so slots
                # keep their index and are extended in place.
                source = self._slots[k]
            future_start = new_window_start + k
            covers_new_block = future_start <= new_id
            extend = covers_new_block and self._bit_for_slot(k, new_id, new_window_start)
            new_key = source | {new_id} if extend else source
            plans.append(_SlotPlan(source_key=source, extend=extend, new_key=new_key))
        return plans

    def _realize(
        self,
        plan: _SlotPlan,
        block: Block[T],
        new_models: dict[ModelKey, TModel],
    ) -> int:
        """Materialize one slot plan into ``new_models``.

        Returns the number of ``A_M`` invocations performed (0 when the
        model carries over or was already built for an identical key).
        """
        if plan.new_key in new_models:
            return 0
        if not plan.extend:
            # Unchanged model: share the existing object (or revive it
            # from the vault — the copy is private by construction).
            new_models[plan.new_key] = self._load(plan.source_key)
            return 0
        if plan.source_key == EMPTY_KEY:
            new_models[plan.new_key] = self.maintainer.build([block])
            return 1
        source = self._load(plan.source_key)
        if plan.source_key in self._models:
            # In-memory models may feed several slots; clone before the
            # (possibly mutating) update.  Vault fetches are already
            # private copies.
            source = self.maintainer.clone(source)
        new_models[plan.new_key] = self.maintainer.add_block(source, block)
        return 1

    # ------------------------------------------------------------------
    # Parallel off-line updates (repro.parallel)
    # ------------------------------------------------------------------

    def _worker_token(self) -> tuple[str, Any] | None:
        """How to reconstruct ``A_M`` inside a worker, if at all.

        Maintainers exposing ``worker_payload()`` ship a small spec
        (workers rebuild and cache a replica, registering history
        blocks zero-copy from their refs); anything else ships its full
        pickle.  ``None`` — e.g. an unpicklable test double — keeps the
        observe serial.
        """
        payload_fn = getattr(self.maintainer, "worker_payload", None)
        if callable(payload_fn):
            spec = payload_fn()
            if spec is not None:
                return ("spec", spec)
        try:
            return ("blob", save_model(self.maintainer))
        except Exception:
            return None

    def _history_refs(self, source_key: ModelKey) -> "list[Any] | None":
        """Zero-copy refs for a source model's selected blocks."""
        refs_fn = getattr(self.maintainer, "worker_block_refs", None)
        if not callable(refs_fn):
            return None
        return cast("list[Any] | None", refs_fn(sorted(source_key)))

    def _realize_offline_parallel(
        self,
        plans: list[_SlotPlan],
        block: Block[T],
        new_models: dict[ModelKey, TModel],
    ) -> int:
        """Fan the off-line slot updates out to the worker pool.

        Carry-over plans (no ``A_M`` invocation) are realized inline;
        each extending plan becomes one worker task shipping the
        maintainer token, the pickled source model, and block refs.
        Workers return model pickles that are adopted verbatim, so the
        resulting collection is byte-identical to the serial loop's.

        Parent-side state that the serial loop would have touched is
        mirrored exactly once: the first invoking plan's block
        registration (TID-lists, block store, and — for ECUT+ — pair
        materialization) happens here with the same model argument the
        serial ``A_M`` call would have used, and each task's changed
        diagnostics entries are re-recorded in plan order.

        Returns the off-line ``A_M`` invocation count (equal to the
        serial loop's by construction).
        """
        from repro.parallel.shards import block_ref, maintain_shard

        pool = self._pool
        assert pool is not None
        token = self._worker_token()
        pending: dict[ModelKey, _SlotPlan] = {}
        history: dict[ModelKey, tuple[Any, ...]] = {}
        invocations = 0
        if token is not None:
            for plan in plans:
                if plan.new_key in new_models or plan.new_key in pending:
                    continue
                if not plan.extend:
                    invocations += self._realize(plan, block, new_models)
                    continue
                if token[0] == "spec":
                    refs = self._history_refs(plan.source_key)
                    if refs is None:
                        # Block handles unavailable (e.g. right after a
                        # restore): replicas cannot be fed, go serial.
                        token = None
                        break
                    history[plan.new_key] = tuple(refs)
                pending[plan.new_key] = plan
        if token is None:
            # Serial fallback; carry-overs realized above are skipped
            # again by _realize's new_models guard, so nothing repeats.
            for plan in plans:
                invocations += self._realize(plan, block, new_models)
            return invocations
        if not pending:
            return invocations
        loaded: dict[ModelKey, TModel] = {}

        def load_once(key: ModelKey) -> TModel:
            if key not in loaded:
                loaded[key] = self._load(key)
            return loaded[key]

        # Mirror the serial loop's first A_M-invoking registration of
        # the new block (add_block registers with its incoming source
        # model; build registers bare, then pairs use the built model).
        register = getattr(self.maintainer, "register_block", None)
        first_plan = next(iter(pending.values()))
        first_builds = first_plan.source_key == EMPTY_KEY
        if callable(register):
            if first_builds:
                register(block)
            else:
                register(block, model=load_once(first_plan.source_key))
        new_ref = block_ref(block)
        payloads = []
        for key, plan in pending.items():
            source_blob = (
                None
                if plan.source_key == EMPTY_KEY
                else save_model(load_once(plan.source_key))
            )
            payloads.append((token, source_blob, new_ref, history.get(key, ())))
        results = pool.run(maintain_shard, payloads)
        diagnostics = getattr(self.maintainer, "diagnostics", None)
        for (key, _plan), (blob, diag_entries) in zip(pending.items(), results):
            new_models[key] = cast("TModel", load_model(blob))
            invocations += 1
            if diagnostics is not None:
                for channel, entry in diag_entries.items():
                    diagnostics.record(channel, entry)
        if callable(register) and first_builds:
            register(block, model=new_models[first_plan.new_key])
        return invocations

    # ------------------------------------------------------------------
    # Checkpointing (the session layer's engine contract)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:  # demonlint: disable=DML008 (``_pool`` is a live process-pool handle and never rides in a checkpoint; load_state_dict resets it to None and the owning session rebinds)
        """Serializable snapshot of the whole collection of models.

        Every distinct model (including the empty model and any
        vault-resident ones) is serialized, so a session checkpoint is
        self-contained even when the vault it is written to is the same
        one this GEMM spills into.
        """
        keys = set(self._slots) | {EMPTY_KEY}
        return {
            "t": self._t,
            "slots": [sorted(key) for key in self._slots],
            "models": {
                tuple(sorted(key)): save_model(self._load(key)) for key in keys
            },
            # Which keys were vault-resident at snapshot time, so restore
            # re-establishes the same in-memory/disk split (DML008: every
            # piece of run state round-trips explicitly).
            "spilled": sorted(sorted(key) for key in self._spilled),
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore the slot table and models saved by :meth:`state_dict`.

        With a vault configured, the §3.2.3 in-memory/disk split is
        re-established: only the current and empty models stay live,
        the rest are re-spilled.
        """
        self._t = cast(int, state["t"])
        # Live pool handles never ride in a checkpoint: a restored
        # engine runs serial until the owning session rebinds one.
        self._pool = None
        self._slots = [frozenset(ids) for ids in cast("list[list[int]]", state["slots"])]
        blobs = cast("dict[tuple[int, ...], bytes]", state["models"])
        revived: dict[ModelKey, TModel] = {
            frozenset(ids): cast("TModel", load_model(blob))
            for ids, blob in blobs.items()
        }
        if self.vault is None:
            self._models = revived
            self._spilled = set()
            return
        memory_keys = {self._slots[0], EMPTY_KEY}
        self._models = {key: revived[key] for key in memory_keys}
        # Re-derive rather than trust ``state["spilled"]``: a checkpoint
        # taken without a vault still restores correctly into a vaulted
        # GEMM (for vaulted snapshots the two sets provably coincide).
        spilled = set(revived) - memory_keys
        for key in spilled:
            self.vault.put(self._spill_key(key), revived[key])
        self._spilled = spilled
