"""DemonMonitor — the legacy facade over :class:`MiningSession`.

Historically the one-stop driver for the paper's problem space; the
driver tier now lives in :mod:`repro.core.session`, which adds the
unified telemetry spine and checkpoint/restore.  ``DemonMonitor`` is
kept as a thin facade for existing callers: it *is* a
:class:`~repro.core.session.MiningSession` (same constructor surface,
same :class:`MonitorReport`), just under its original name.
"""

from __future__ import annotations

from typing import TypeVar

from repro.core.session import (
    BSSOption,
    MiningSession,
    MonitorReport,
    SpanOption,
)

TModel = TypeVar("TModel")
T = TypeVar("T")

__all__ = ["DemonMonitor", "MonitorReport", "SpanOption", "BSSOption"]


class DemonMonitor(MiningSession[TModel, T]):
    """Mining and monitoring one systematically evolving dataset.

    A facade preserved for source compatibility — construction,
    :meth:`~repro.core.session.MiningSession.observe`, and reporting
    are inherited unchanged from
    :class:`~repro.core.session.MiningSession`, which also provides
    ``checkpoint()`` / ``restore()`` and the shared telemetry spine.
    """
