"""DemonMonitor — the paper's whole problem space behind one facade.

Figure 11 enumerates DEMON's problem space as the cross product of the
data span dimension {unrestricted window, most recent window} and the
two objectives {model maintenance, pattern detection}.  A
:class:`DemonMonitor` is configured with one point (or row) of that
space: a model class (via its incremental maintainer ``A_M``), a data
span option, a block selection sequence, and optionally a pattern
detector; each arriving block then updates everything in one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generic, TypeVar

from repro.core.blocks import Block, Snapshot
from repro.core.bss import WindowIndependentBSS, WindowRelativeBSS
from repro.core.gemm import GEMM, GEMMUpdateReport
from repro.core.maintainer import (
    IncrementalModelMaintainer,
    UnrestrictedWindowMaintainer,
)
from repro.core.windows import MostRecentWindow, UnrestrictedWindow

if TYPE_CHECKING:
    from repro.patterns.compact import (
        CompactSequence,
        CompactSequenceMiner,
        PatternUpdateReport,
    )
    from repro.storage.persist import ModelVault

TModel = TypeVar("TModel")
T = TypeVar("T")

SpanOption = UnrestrictedWindow | MostRecentWindow
BSSOption = WindowIndependentBSS | WindowRelativeBSS | None


@dataclass
class MonitorReport:
    """What one :meth:`DemonMonitor.observe` call did.

    Attributes:
        t: Identifier of the block just added.
        model_updated: Whether the current model changed (a 0-bit in
            the BSS carries the model over unchanged).
        gemm: GEMM accounting when running under the MRW option.
        patterns: Pattern-detection accounting when enabled.
    """

    t: int
    model_updated: bool = False
    gemm: GEMMUpdateReport | None = None
    patterns: PatternUpdateReport | None = None


class DemonMonitor(Generic[TModel, T]):
    """Mining and monitoring one systematically evolving dataset.

    Args:
        maintainer: The incremental model maintainer ``A_M``
            (e.g. :class:`~repro.itemsets.BordersMaintainer` or
            :class:`~repro.clustering.BirchPlusMaintainer`).
        span: Data span option; defaults to the unrestricted window.
        bss: Block selection sequence.  A window-relative BSS requires
            the MRW option (§2.3: the UW/MRW distinction is what makes
            window-relative sequences expressible at all).
        pattern_miner: Optional
            :class:`~repro.patterns.CompactSequenceMiner`; when given,
            every observed block also feeds pattern detection.
        keep_snapshot: Whether to retain all blocks in a
            :class:`~repro.core.blocks.Snapshot` (needed only when the
            caller wants to re-derive models or label datasets later).
        vault: Optional :class:`~repro.storage.persist.ModelVault` for
            the MRW option: GEMM then keeps only the current model in
            memory (§3.2.3).  Ignored under the unrestricted window,
            which maintains a single model anyway.
    """

    def __init__(
        self,
        maintainer: IncrementalModelMaintainer[TModel, T],
        span: SpanOption | None = None,
        bss: BSSOption = None,
        pattern_miner: CompactSequenceMiner | None = None,
        keep_snapshot: bool = False,
        vault: ModelVault | None = None,
    ) -> None:
        self.span = span if span is not None else UnrestrictedWindow()
        if isinstance(bss, WindowRelativeBSS) and not isinstance(
            self.span, MostRecentWindow
        ):
            raise ValueError(
                "a window-relative BSS is only meaningful under the most "
                "recent window option"
            )
        self.maintainer = maintainer
        self.pattern_miner = pattern_miner
        self.snapshot: Snapshot[T] | None = Snapshot() if keep_snapshot else None

        if isinstance(self.span, MostRecentWindow):
            self._engine: GEMM[TModel, T] | UnrestrictedWindowMaintainer[TModel, T]
            self._engine = GEMM(maintainer, self.span.w, bss=bss, vault=vault)
        else:
            if isinstance(bss, WindowRelativeBSS):  # unreachable, guarded above
                raise AssertionError
            self._engine = UnrestrictedWindowMaintainer(maintainer, bss=bss)

    @property
    def t(self) -> int:
        """Identifier of the latest observed block."""
        return self._engine.t

    def current_model(self) -> TModel:
        """The model on the configured span w.r.t. the configured BSS."""
        if isinstance(self._engine, GEMM):
            return self._engine.current_model()
        return self._engine.model

    def current_selection(self) -> list[int]:
        """Identifiers of the blocks the current model is extracted from."""
        if isinstance(self._engine, GEMM):
            return sorted(self._engine.current_selection())
        return self._engine.selected_block_ids

    def observe(self, block: Block[T]) -> MonitorReport:
        """Feed the next arriving block to every configured objective."""
        report = MonitorReport(t=block.block_id)
        if self.snapshot is not None:
            self.snapshot.extend(block)
        before = self.current_selection()
        if isinstance(self._engine, GEMM):
            report.gemm = self._engine.observe(block)
        else:
            self._engine.observe(block)
        report.model_updated = self.current_selection() != before
        if self.pattern_miner is not None:
            report.patterns = self.pattern_miner.observe(block)
        return report

    def discovered_patterns(self, min_length: int = 2) -> list[CompactSequence]:
        """Compact sequences found so far (empty without a miner)."""
        if self.pattern_miner is None:
            return []
        return self.pattern_miner.distinct_sequences(min_length=min_length)
