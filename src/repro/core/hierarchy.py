"""Time hierarchies over blocks (paper §2.1).

"The lack of constraints on the time spanned by any block also allows
us to incorporate hierarchies on the time dimension.  (We just merge
all blocks that fall under the same parent.)"  This module implements
that merge: a :class:`TimeHierarchy` groups a fine-grained block stream
into coarser blocks by a user key (hour → day → week ...), re-numbering
the coarse blocks sequentially so they form a valid systematic
evolution of their own.

It also provides :class:`HierarchicalStream`, a push-style adapter that
feeds one incoming fine stream to consumers at several granularities at
once — how an analyst would run the same monitor at the day and week
levels simultaneously.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Sequence
from typing import Any, Protocol

from repro.core.blocks import Block, merge_blocks


class BlockConsumer(Protocol):
    """Anything that accepts a block stream (monitors, miners, GEMM)."""

    def observe(self, block: Block[Any]) -> object: ...


class TimeHierarchy:
    """Groups consecutive fine blocks that share a parent key.

    Args:
        parent_key: Maps a fine block to its parent's identity (e.g.
            ``lambda b: b.metadata["day"]``).  Fine blocks must arrive
            grouped by parent (systematic evolution guarantees time
            order, so calendar keys satisfy this).
        label: Optional parent label builder from the first fine block.
    """

    def __init__(
        self,
        parent_key: Callable[[Block[Any]], Hashable],
        label: Callable[[Block[Any]], str] | None = None,
    ) -> None:
        self.parent_key = parent_key
        self.label = label if label is not None else (lambda block: block.label)

    def merge_stream(self, blocks: Sequence[Block[Any]]) -> list[Block[Any]]:
        """Merge a complete fine stream into coarse blocks."""
        coarse: list[Block[Any]] = []
        group: list[Block[Any]] = []
        current_key: Hashable = None
        for block in blocks:
            key = self.parent_key(block)
            if group and key != current_key:
                coarse.append(self._finish(group, len(coarse) + 1))
                group = []
            current_key = key
            group.append(block)
        if group:
            coarse.append(self._finish(group, len(coarse) + 1))
        return coarse

    def _finish(self, group: list[Block[Any]], coarse_id: int) -> Block[Any]:
        merged = merge_blocks(group, block_id=coarse_id, label=self.label(group[0]))
        merged.metadata.update(
            {
                key: value
                for key, value in group[0].metadata.items()
                if key != "merged_from"
            }
        )
        merged.metadata["fine_block_ids"] = [b.block_id for b in group]
        return merged


class HierarchicalStream:
    """Feeds one fine stream to per-granularity consumers.

    Consumers are objects with an ``observe(block)`` method (monitors,
    pattern miners, GEMM instances).  The fine-level consumer sees every
    block as it arrives; a coarse consumer sees a merged block whenever
    its parent key changes (i.e. its period closes).  Call
    :meth:`flush` at end of stream to close the last open period.

    Args:
        hierarchy: The grouping rule.
        fine_consumer: Optional consumer of the raw fine blocks.
        coarse_consumer: Optional consumer of the merged blocks.
    """

    def __init__(
        self,
        hierarchy: TimeHierarchy,
        fine_consumer: BlockConsumer | None = None,
        coarse_consumer: BlockConsumer | None = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.fine_consumer = fine_consumer
        self.coarse_consumer = coarse_consumer
        self._open_group: list[Block[Any]] = []
        self._open_key: Hashable = None
        self._coarse_count = 0

    @property
    def coarse_blocks_emitted(self) -> int:
        return self._coarse_count

    def observe(self, block: Block[Any]) -> None:
        """Process the next fine block."""
        if self.fine_consumer is not None:
            self.fine_consumer.observe(block)
        key = self.hierarchy.parent_key(block)
        if self._open_group and key != self._open_key:
            self._emit()
        self._open_key = key
        self._open_group.append(block)

    def flush(self) -> None:
        """Close the trailing period (call once, at end of stream)."""
        if self._open_group:
            self._emit()

    def _emit(self) -> None:
        self._coarse_count += 1
        merged = self.hierarchy._finish(self._open_group, self._coarse_count)
        self._open_group = []
        if self.coarse_consumer is not None:
            self.coarse_consumer.observe(merged)
