"""Systematic block evolution: blocks, snapshots, and the evolving database.

DEMON (§2.1) models the database ``D`` as a conceptually infinite
sequence of blocks ``D1, D2, ...`` where each block is a set of tuples
added simultaneously, identifiers increase in arrival order, and the
*current database snapshot* is the prefix ``D[1, t]`` ending at the
latest block ``Dt``.  Blocks may span irregular time intervals; an
optional timestamp label carries that metadata for pattern reporting.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import Any, Generic, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class Block(Generic[T]):
    """One block of tuples added to the database at the same time.

    Attributes:
        block_id: Positive identifier; identifiers increase in arrival
            order (paper §2.1).
        tuples: The records in the block.  For itemset mining each tuple
            is a transaction (sequence of item ids); for clustering each
            tuple is a d-dimensional point.
        label: Optional human-readable label (e.g. "Mon 09:00-15:00")
            used when reporting discovered patterns.
        metadata: Free-form attributes, e.g. ``{"weekday": 0, "hour": 8}``
            for calendar-aware block selection predicates.
    """

    block_id: int
    tuples: tuple[T, ...]
    label: str = ""
    metadata: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.block_id < 1:
            raise ValueError(f"block identifiers start at 1, got {self.block_id}")

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[T]:
        return iter(self.tuples)


def make_block(
    block_id: int,
    tuples: Iterable[T],
    label: str = "",
    metadata: dict[str, Any] | None = None,
) -> Block[T]:
    """Construct a :class:`Block`, materializing ``tuples`` into a tuple."""
    return Block(
        block_id=block_id,
        tuples=tuple(tuples),
        label=label,
        metadata=dict(metadata) if metadata else {},
    )


class Snapshot(Generic[T]):
    """The current database snapshot ``D[1, t]`` (paper §2.1).

    A snapshot is an ordered prefix of the block sequence.  It is
    append-only: :meth:`extend` adds block ``t+1``.  Indexing is by the
    paper's 1-based block identifier.
    """

    def __init__(self, blocks: Sequence[Block[T]] = ()) -> None:
        self._blocks: list[Block[T]] = []
        for block in blocks:
            self.extend(block)

    @property
    def t(self) -> int:
        """Identifier of the latest block (0 when the snapshot is empty)."""
        return len(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block[T]]:
        return iter(self._blocks)

    def extend(self, block: Block[T]) -> None:
        """Append the next block; its id must be exactly ``t + 1``."""
        expected = self.t + 1
        if block.block_id != expected:
            raise ValueError(
                f"systematic evolution requires block id {expected}, "
                f"got {block.block_id}"
            )
        self._blocks.append(block)

    def block(self, block_id: int) -> Block[T]:
        """Return block ``D_{block_id}`` (1-based)."""
        if not 1 <= block_id <= self.t:
            raise IndexError(f"block id {block_id} outside snapshot D[1, {self.t}]")
        return self._blocks[block_id - 1]

    def blocks(self, lo: int, hi: int) -> list[Block[T]]:
        """Return blocks ``D[lo, hi]`` inclusive (the paper's D[lo, hi])."""
        if lo < 1 or hi > self.t or lo > hi:
            raise IndexError(f"range D[{lo}, {hi}] outside snapshot D[1, {self.t}]")
        return self._blocks[lo - 1 : hi]

    def tuple_count(self, lo: int | None = None, hi: int | None = None) -> int:
        """Total number of tuples in ``D[lo, hi]`` (default: whole snapshot)."""
        lo = 1 if lo is None else lo
        hi = self.t if hi is None else hi
        if lo > hi:
            return 0
        return sum(len(b) for b in self.blocks(lo, hi))


def merge_blocks(blocks: Sequence[Block[T]], block_id: int, label: str = "") -> Block[T]:
    """Merge several blocks into one coarser block.

    The paper (§2.1) notes that hierarchies on the time dimension are
    handled by merging all blocks that fall under the same parent; this
    helper performs that merge.  Tuples are concatenated in block order.
    """
    if not blocks:
        raise ValueError("cannot merge an empty sequence of blocks")
    tuples: list[T] = []
    for block in blocks:
        tuples.extend(block.tuples)
    merged_meta: dict[str, Any] = {"merged_from": [b.block_id for b in blocks]}
    return Block(block_id=block_id, tuples=tuple(tuples), label=label, metadata=merged_meta)
