"""Systematic block evolution: blocks, snapshots, and the evolving database.

DEMON (§2.1) models the database ``D`` as a conceptually infinite
sequence of blocks ``D1, D2, ...`` where each block is a set of tuples
added simultaneously, identifiers increase in arrival order, and the
*current database snapshot* is the prefix ``D[1, t]`` ending at the
latest block ``Dt``.  Blocks may span irregular time intervals; an
optional timestamp label carries that metadata for pattern reporting.

A :class:`Block` is a lightweight *handle*: identity (``block_id``,
``label``, ``metadata``) lives on the handle, while the records live in
a :class:`BlockData` provided by a storage backend
(:mod:`repro.storage.engine`).  Consumers stream records through
:meth:`Block.iter_chunks` / :meth:`Block.iter_records`; the eager
``.tuples`` view remains for tests and the storage layer, but algorithm
code must not touch it (demonlint DML013).
"""

from __future__ import annotations

import os
import pickle
from collections.abc import Iterable, Iterator, Sequence
from typing import Any, Generic, Protocol, TypeVar

T = TypeVar("T")
T_co = TypeVar("T_co", covariant=True)

#: Logical size of one integer field (an item id or a transaction id).
INT_BYTES = 4
#: Logical size of one floating-point coordinate.
FLOAT_BYTES = 8

#: Fallback chunk size when ``DEMON_BLOCK_CHUNK`` is unset.
FALLBACK_CHUNK_SIZE = 4096


def default_chunk_size() -> int:
    """Records per chunk for streaming iteration (``DEMON_BLOCK_CHUNK``)."""
    raw = os.environ.get("DEMON_BLOCK_CHUNK", "").strip()
    if not raw:
        return FALLBACK_CHUNK_SIZE
    try:
        size = int(raw)
    except ValueError:
        raise ValueError(
            f"DEMON_BLOCK_CHUNK must be a positive integer, got {raw!r}"
        ) from None
    if size < 1:
        raise ValueError(f"DEMON_BLOCK_CHUNK must be >= 1, got {size}")
    return size


def record_nbytes(record: Any) -> int:
    """Logical size of one record, matching the paper's accounting.

    A transaction costs :data:`INT_BYTES` per item identifier and a
    d-dimensional point costs :data:`FLOAT_BYTES` per coordinate
    (TID-lists occupy the same space as the transactional format,
    §3.1.1).  Anything else — e.g. a labelled point — is charged its
    pickled size.
    """
    if isinstance(record, (tuple, list)) and record:
        if all(type(value) is int for value in record):
            return INT_BYTES * len(record)
        if all(type(value) is float for value in record):
            return FLOAT_BYTES * len(record)
    elif isinstance(record, (tuple, list)):
        return 0
    return len(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))


def records_nbytes(records: Iterable[Any]) -> int:
    """Logical size of a batch of records."""
    return sum(record_nbytes(record) for record in records)


class BlockData(Protocol[T_co]):
    """The record source behind a :class:`Block` handle.

    Implementations live in :mod:`repro.storage.engine`; the in-memory
    one is defined here so the core layer stays import-free of storage.
    """

    @property
    def num_records(self) -> int:
        """Record count, available without materializing anything."""
        ...

    @property
    def nbytes(self) -> int:
        """Logical size of the stored records."""
        ...

    def chunks(self, chunk_size: int | None = None) -> Iterator[Sequence[T_co]]:
        """Yield the records as bounded-size batches, in order."""
        ...

    def materialize(self) -> tuple[T_co, ...]:
        """The full record tuple (storage/test escape hatch)."""
        ...


class InMemoryBlockData(Generic[T]):
    """Backend-free record storage: one materialized tuple in memory."""

    __slots__ = ("_records", "_nbytes", "__weakref__")

    def __init__(self, records: Iterable[T]) -> None:
        self._records: tuple[T, ...] = tuple(records)
        self._nbytes: int | None = None

    @property
    def num_records(self) -> int:
        return len(self._records)

    @property
    def nbytes(self) -> int:
        if self._nbytes is None:
            self._nbytes = records_nbytes(self._records)
        return self._nbytes

    def chunks(self, chunk_size: int | None = None) -> Iterator[Sequence[T]]:
        size = chunk_size if chunk_size is not None else default_chunk_size()
        if size < 1:
            raise ValueError(f"chunk size must be >= 1, got {size}")
        for start in range(0, len(self._records), size):
            yield self._records[start : start + size]

    def materialize(self) -> tuple[T, ...]:
        return self._records


def _restore_block(
    block_id: int, records: tuple[Any, ...], label: str, metadata: dict[str, Any]
) -> "Block[Any]":
    """Pickle target: blocks always deserialize onto in-memory data."""
    return Block(block_id, records, label=label, metadata=metadata)


class Block(Generic[T]):
    """One block of tuples added to the database at the same time.

    Attributes:
        block_id: Positive identifier; identifiers increase in arrival
            order (paper §2.1).
        label: Optional human-readable label (e.g. "Mon 09:00-15:00")
            used when reporting discovered patterns.
        metadata: Free-form attributes, e.g. ``{"weekday": 0, "hour": 8}``
            for calendar-aware block selection predicates.
        data: The :class:`BlockData` record source this handle wraps.

    Exactly one record source must be given: ``tuples=...`` (records
    are materialized into in-memory data) or ``data=...`` (a backend
    supplies the storage).
    """

    __slots__ = ("block_id", "label", "metadata", "data")

    block_id: int
    label: str
    metadata: dict[str, Any]
    data: BlockData[T]

    def __init__(
        self,
        block_id: int,
        tuples: Iterable[T] | None = None,
        label: str = "",
        metadata: dict[str, Any] | None = None,
        *,
        data: BlockData[T] | None = None,
    ) -> None:
        if block_id < 1:
            raise ValueError(f"block identifiers start at 1, got {block_id}")
        if (tuples is None) == (data is None):
            raise ValueError(
                "a block needs exactly one record source: tuples=... or data=..."
            )
        if data is None:
            assert tuples is not None
            data = InMemoryBlockData(tuples)
        object.__setattr__(self, "block_id", block_id)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "metadata", dict(metadata) if metadata else {})
        object.__setattr__(self, "data", data)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"Block is immutable; cannot set {name!r}")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"Block is immutable; cannot delete {name!r}")

    # ------------------------------------------------------------------
    # Record access
    # ------------------------------------------------------------------

    @property
    def num_records(self) -> int:
        """Record count from backend metadata (no materialization)."""
        return self.data.num_records

    @property
    def nbytes(self) -> int:
        """Logical size of the block's records."""
        return self.data.nbytes

    def iter_chunks(self, chunk_size: int | None = None) -> Iterator[Sequence[T]]:
        """Stream the records as bounded-size batches, in order."""
        return self.data.chunks(chunk_size)

    def iter_records(self) -> Iterator[T]:
        """Stream the records one at a time (chunked underneath)."""
        for chunk in self.data.chunks():
            yield from chunk

    def materialize(self) -> tuple[T, ...]:
        """The full record tuple; prefer the streaming iterators."""
        return self.data.materialize()

    def as_array(self, dtype: Any = float) -> Any:
        """The records as a 2-d :class:`numpy.ndarray`.

        Columnar backends convert without building record tuples.
        """
        fast = getattr(self.data, "as_array", None)
        if fast is not None:
            return fast(dtype)
        import numpy as np

        return np.asarray(self.data.materialize(), dtype=dtype)

    @property
    def tuples(self) -> tuple[T, ...]:
        """Eager record view, kept for tests and the storage layer.

        Algorithm code must stream instead (demonlint DML013): this
        property materializes the whole block regardless of backend.
        """
        return self.data.materialize()

    def __len__(self) -> int:
        return self.data.num_records

    def __iter__(self) -> Iterator[T]:
        return self.iter_records()

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Block):
            return NotImplemented
        return (
            self.block_id == other.block_id
            and self.label == other.label
            and self.data.materialize() == other.data.materialize()
        )

    def __hash__(self) -> int:
        return hash((self.block_id, self.label))

    def __repr__(self) -> str:
        return (
            f"Block(block_id={self.block_id}, num_records={self.num_records}, "
            f"label={self.label!r})"
        )

    def __reduce__(self) -> tuple[Any, ...]:
        # Checkpoints must be self-contained and byte-identical across
        # backends, so a block always pickles its materialized records.
        return (
            _restore_block,
            (self.block_id, self.data.materialize(), self.label, dict(self.metadata)),
        )


def make_block(
    block_id: int,
    tuples: Iterable[T],
    label: str = "",
    metadata: dict[str, Any] | None = None,
    *,
    backend: Any = None,
) -> Block[T]:
    """Construct a :class:`Block`, routing records through a backend.

    With ``backend=None`` the ambient backend (selected by the
    ``DEMON_BLOCK_BACKEND`` environment variable) is consulted, so a
    whole run can be switched onto on-disk storage without touching
    call sites.  When no backend applies, records are materialized into
    in-memory data exactly as before.
    """
    if backend is None:
        from repro.storage.engine import ambient_backend

        backend = ambient_backend()
    if backend is not None:
        block: Block[T] = backend.ingest(
            block_id, tuples, label=label, metadata=metadata
        )
        return block
    return Block(
        block_id=block_id,
        tuples=tuple(tuples),
        label=label,
        metadata=dict(metadata) if metadata else {},
    )


class Snapshot(Generic[T]):
    """The current database snapshot ``D[1, t]`` (paper §2.1).

    A snapshot is an ordered prefix of the block sequence.  It is
    append-only: :meth:`extend` adds block ``t+1``.  Indexing is by the
    paper's 1-based block identifier.
    """

    def __init__(self, blocks: Sequence[Block[T]] = ()) -> None:
        self._blocks: list[Block[T]] = []
        for block in blocks:
            self.extend(block)

    @property
    def t(self) -> int:
        """Identifier of the latest block (0 when the snapshot is empty)."""
        return len(self._blocks)

    @property
    def num_records(self) -> int:
        """Total records in ``D[1, t]``, summed from block metadata.

        Backends keep per-block counts, so this never materializes a
        single record regardless of where the blocks live.
        """
        return sum(block.num_records for block in self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block[T]]:
        return iter(self._blocks)

    def extend(self, block: Block[T]) -> None:
        """Append the next block; its id must be exactly ``t + 1``."""
        expected = self.t + 1
        if block.block_id != expected:
            raise ValueError(
                f"systematic evolution requires block id {expected}, "
                f"got {block.block_id}"
            )
        self._blocks.append(block)

    def block(self, block_id: int) -> Block[T]:
        """Return block ``D_{block_id}`` (1-based)."""
        if not 1 <= block_id <= self.t:
            raise IndexError(f"block id {block_id} outside snapshot D[1, {self.t}]")
        return self._blocks[block_id - 1]

    def blocks(self, lo: int, hi: int) -> list[Block[T]]:
        """Return blocks ``D[lo, hi]`` inclusive (the paper's D[lo, hi])."""
        if lo < 1 or hi > self.t or lo > hi:
            raise IndexError(f"range D[{lo}, {hi}] outside snapshot D[1, {self.t}]")
        return self._blocks[lo - 1 : hi]

    def tuple_count(self, lo: int | None = None, hi: int | None = None) -> int:
        """Total number of tuples in ``D[lo, hi]`` (default: whole snapshot)."""
        lo = 1 if lo is None else lo
        hi = self.t if hi is None else hi
        if lo > hi:
            return 0
        return sum(b.num_records for b in self.blocks(lo, hi))


def merge_blocks(
    blocks: Sequence[Block[T]],
    block_id: int,
    label: str = "",
    *,
    backend: Any = None,
) -> Block[T]:
    """Merge several blocks into one coarser block.

    The paper (§2.1) notes that hierarchies on the time dimension are
    handled by merging all blocks that fall under the same parent; this
    helper performs that merge.  Records are concatenated in block
    order, streamed chunk-wise from the source blocks.
    """
    if not blocks:
        raise ValueError("cannot merge an empty sequence of blocks")

    def stream() -> Iterator[T]:
        for block in blocks:
            yield from block.iter_records()

    merged_meta: dict[str, Any] = {"merged_from": [b.block_id for b in blocks]}
    return make_block(
        block_id, stream(), label=label, metadata=merged_meta, backend=backend
    )
