"""DEMON core: block evolution, data span, BSS, GEMM, and the monitor."""

from repro.core.blocks import Block, Snapshot, make_block, merge_blocks
from repro.core.bss import (
    WindowIndependentBSS,
    WindowRelativeBSS,
    bits_key,
    weekday_bss,
)
from repro.core.gemm import GEMM, GEMMUpdateReport
from repro.core.hierarchy import HierarchicalStream, TimeHierarchy
from repro.core.maintainer import (
    DeletableModelMaintainer,
    IncrementalModelMaintainer,
    UnrestrictedWindowMaintainer,
)
from repro.core.monitor import DemonMonitor
from repro.core.session import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    MiningSession,
    MonitorReport,
    checkpoint_key,
)
from repro.core.windows import BlockRange, MostRecentWindow, UnrestrictedWindow

__all__ = [
    "Block",
    "Snapshot",
    "make_block",
    "merge_blocks",
    "WindowIndependentBSS",
    "WindowRelativeBSS",
    "weekday_bss",
    "bits_key",
    "BlockRange",
    "UnrestrictedWindow",
    "MostRecentWindow",
    "IncrementalModelMaintainer",
    "DeletableModelMaintainer",
    "UnrestrictedWindowMaintainer",
    "GEMM",
    "GEMMUpdateReport",
    "TimeHierarchy",
    "HierarchicalStream",
    "DemonMonitor",
    "MonitorReport",
    "MiningSession",
    "CheckpointError",
    "CHECKPOINT_FORMAT",
    "checkpoint_key",
]
