"""Incremental maintenance of decision-tree models.

The paper's footnote: "In prior work, we developed an algorithm for
incremental decision tree construction [BOAT]. Hence we do not address
this problem here."  What DEMON *does* require is that some ``A_M``
exists so that GEMM can lift it to the most recent window.  Two
maintainers are provided:

* :class:`LeafRefinementTreeMaintainer` — a practical single-pass
  incremental scheme: new blocks are routed to the existing leaves,
  leaf class histograms are updated exactly, and a leaf that has grown
  large and impure is re-split locally from a bounded reservoir sample
  of the points it absorbed (VFDT-flavored, far simpler than BOAT).
  Leaf histograms stay exact; only the *structure* is refined lazily.
* :class:`RebuildingTreeMaintainer` — the naive baseline ``A_M`` that
  refits from all selected blocks on every addition (it keeps the
  blocks in a store).  Slow, but exactly equal to a from-scratch fit —
  useful as ground truth in tests and as GEMM's worst-case guest.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field

from repro.contracts import maintainer_contract, pure_unless_cloned
from repro.core.blocks import Block
from repro.core.maintainer import IncrementalModelMaintainer
from repro.trees.dtree import DecisionTree, LabelledPoint, TreeNode, gini


@dataclass
class TreeModel:
    """A maintainable decision-tree model.

    Attributes:
        tree: The current classifier (``None`` until data arrives).
        selected_block_ids: Blocks the model was trained on.
        blocks: Retained training blocks, for maintainers that refit
            from data (blocks are immutable, so clones may share them).
    """

    tree: DecisionTree | None = None
    selected_block_ids: list[int] = field(default_factory=list)
    blocks: dict[int, Block[LabelledPoint]] = field(default_factory=dict)


def _route_to_leaf(node: TreeNode, features) -> TreeNode:
    while not node.is_leaf:
        node = node.left if features[node.feature] < node.threshold else node.right
    return node


def _redistribute_counts(node: TreeNode) -> None:
    """Push a node's exact class histogram down to its descendants.

    Children carry sample-based counts; scale them per class so each
    level's children sum exactly to the parent.  Classes the sample
    never routed go to the (sample-)larger child.
    """
    if node.is_leaf:
        return
    left_sample = dict(node.left.class_counts)
    right_sample = dict(node.right.class_counts)
    left_total = sum(left_sample.values())
    right_total = sum(right_sample.values())
    new_left: dict[int, int] = {}
    new_right: dict[int, int] = {}
    for label, exact in node.class_counts.items():
        in_left = left_sample.get(label, 0)
        in_right = right_sample.get(label, 0)
        denominator = in_left + in_right
        if denominator == 0:
            share = exact if left_total >= right_total else 0
        else:
            share = round(exact * in_left / denominator)
        if share:
            new_left[label] = share
        if exact - share:
            new_right[label] = exact - share
    node.left.class_counts = new_left
    node.right.class_counts = new_right
    _redistribute_counts(node.left)
    _redistribute_counts(node.right)


@maintainer_contract
class LeafRefinementTreeMaintainer(
    IncrementalModelMaintainer[TreeModel, LabelledPoint]
):
    """Incremental tree maintenance by exact leaf statistics + lazy splits.

    Args:
        max_depth: Depth cap for initial fit and refinements.
        min_leaf_size: Minimum examples per leaf.
        reservoir_size: Bounded per-leaf sample used for re-splitting.
        split_impurity: A leaf is re-split when its Gini impurity
            exceeds this and it holds at least ``2 * min_leaf_size``
            sampled points.
        seed: Reservoir-sampling RNG seed.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_leaf_size: int = 5,
        reservoir_size: int = 128,
        split_impurity: float = 0.15,
        seed: int = 0,
    ):
        self.max_depth = max_depth
        self.min_leaf_size = min_leaf_size
        self.reservoir_size = reservoir_size
        self.split_impurity = split_impurity
        self.seed = seed

    def _new_tree(self) -> DecisionTree:
        return DecisionTree(
            max_depth=self.max_depth, min_leaf_size=self.min_leaf_size
        )

    def empty_model(self) -> TreeModel:
        return TreeModel()

    def build(self, blocks) -> TreeModel:
        model = self.empty_model()
        for block in blocks:
            model = self.add_block(model, block)
        return model

    @pure_unless_cloned
    def add_block(self, model: TreeModel, block: Block[LabelledPoint]) -> TreeModel:
        rng = random.Random(f"{self.seed}:{block.block_id}")
        if model.tree is None:
            model.tree = self._new_tree().fit(list(block.iter_records()))
            for point in block.iter_records():
                leaf = _route_to_leaf(model.tree.root, point[0])
                self._reservoir_add(leaf, point, rng)
            model.selected_block_ids.append(block.block_id)
            return model

        touched: list[TreeNode] = []
        seen: set[int] = set()
        for point in block.iter_records():
            features, label = point
            leaf = _route_to_leaf(model.tree.root, features)
            leaf.class_counts[label] = leaf.class_counts.get(label, 0) + 1
            self._reservoir_add(leaf, point, rng)
            if id(leaf) not in seen:
                seen.add(id(leaf))
                touched.append(leaf)
        for leaf in touched:
            self._maybe_split(leaf)
        model.selected_block_ids.append(block.block_id)
        return model

    def clone(self, model: TreeModel) -> TreeModel:
        return copy.deepcopy(model)

    # ------------------------------------------------------------------
    # Reservoirs and lazy splitting
    # ------------------------------------------------------------------

    def _reservoir_add(self, leaf: TreeNode, point: LabelledPoint, rng) -> None:
        if len(leaf.sample) < self.reservoir_size:
            leaf.sample.append(point)
        elif rng.random() < self.reservoir_size / max(leaf.size, 1):
            leaf.sample[rng.randrange(self.reservoir_size)] = point

    def _maybe_split(self, leaf: TreeNode) -> None:
        if not leaf.is_leaf:
            return
        impurity = gini(list(leaf.class_counts.values()))
        if impurity < self.split_impurity or len(leaf.sample) < 2 * self.min_leaf_size:
            return
        subtree = self._new_tree().fit(leaf.sample)
        if subtree.root.is_leaf:
            return
        # Graft the refit subtree in place.  The subtree's node counts
        # reflect only the reservoir sample; redistribute the leaf's
        # *exact* histogram down the graft (proportionally to the
        # sample routing) so total leaf mass stays exact.
        sample = leaf.sample
        leaf.feature = subtree.root.feature
        leaf.threshold = subtree.root.threshold
        leaf.left = subtree.root.left
        leaf.right = subtree.root.right
        leaf.sample = []
        _redistribute_counts(leaf)
        for point in sample:
            child = _route_to_leaf(leaf, point[0])
            child.sample.append(point)


@maintainer_contract
class RebuildingTreeMaintainer(IncrementalModelMaintainer[TreeModel, LabelledPoint]):
    """The naive ``A_M``: refit from every selected block on each add.

    The blocks it has seen live on the *model* (like any maintainer
    whose storage layer retains the data); ``add_block`` therefore
    costs a full retrain — the baseline that motivates real
    incremental schemes.  Keeping the blocks on the model rather than
    on ``self`` preserves the ``pure_unless_cloned`` contract (DML012):
    divergent GEMM slots must not observe each other's data.
    """

    def __init__(self, max_depth: int = 6, min_leaf_size: int = 5):
        self.max_depth = max_depth
        self.min_leaf_size = min_leaf_size

    def empty_model(self) -> TreeModel:
        return TreeModel()

    def build(self, blocks) -> TreeModel:
        model = self.empty_model()
        for block in blocks:
            model = self.add_block(model, block)
        return model

    @pure_unless_cloned
    def add_block(self, model: TreeModel, block: Block[LabelledPoint]) -> TreeModel:
        model.blocks[block.block_id] = block
        model.selected_block_ids.append(block.block_id)
        data = [
            point
            for block_id in model.selected_block_ids
            for point in model.blocks[block_id].iter_records()
        ]
        model.tree = DecisionTree(
            max_depth=self.max_depth, min_leaf_size=self.min_leaf_size
        ).fit(data)
        return model

    def clone(self, model: TreeModel) -> TreeModel:
        return TreeModel(
            tree=copy.deepcopy(model.tree),
            selected_block_ids=list(model.selected_block_ids),
            # Blocks are immutable; a fresh dict with shared entries is
            # a safe (and cheap) deep-enough copy.
            blocks=dict(model.blocks),
        )
