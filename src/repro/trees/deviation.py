"""FOCUS instantiated with decision-tree models (the third model class).

The deviation framework's decision-tree instantiation (GGRL99a): a
tree's structural component is the partition of the attribute space
into its leaf hyper-rectangles; the greatest common refinement of two
trees is the *overlay* of the two partitions — all non-empty pairwise
intersections of leaf regions; the measure of a region on a dataset is
the fraction of tuples falling in it, split by class.  The deviation is
the aggregated measure difference over the GCR.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.blocks import Block
from repro.deviation.focus import DeviationFunction, DeviationResult
from repro.trees.dtree import DecisionTree, LabelledPoint, Region


class TreeDeviation(DeviationFunction):
    """FOCUS over decision-tree models.

    Regions are (hyper-rectangle, class) pairs from the GCR overlay; a
    region's measure on a dataset is the fraction of tuples of that
    class inside the rectangle.  Both datasets are always scanned once
    (the framework's bound), so ``scans`` is 2 for distinct blocks.

    Args:
        max_depth: Depth of the per-block trees.
        min_leaf_size: Leaf-size floor of the per-block trees.
    """

    def __init__(self, max_depth: int = 4, min_leaf_size: int = 10):
        self.max_depth = max_depth
        self.min_leaf_size = min_leaf_size

    def model(self, block: Block[LabelledPoint]) -> DecisionTree:
        tree = DecisionTree(
            max_depth=self.max_depth, min_leaf_size=self.min_leaf_size
        )
        return tree.fit(list(block.iter_records()))

    def gcr(
        self, model_a: DecisionTree, model_b: DecisionTree
    ) -> list[tuple[Region, int]]:
        """Overlay the two leaf partitions, crossed with the class set."""
        classes: set[int] = set()
        for tree in (model_a, model_b):
            for _region, histogram in tree.leaf_regions():
                classes.update(histogram)
        overlay: list[Region] = []
        for region_a, _h in model_a.leaf_regions():
            for region_b, _h in model_b.leaf_regions():
                intersection = region_a.intersect(region_b)
                if intersection is not None:
                    overlay.append(intersection)
        return [(region, label) for region in overlay for label in sorted(classes)]

    def measures(
        self,
        regions: Sequence[tuple[Region, int]],
        block: Block[LabelledPoint],
        model: DecisionTree | None,
    ) -> np.ndarray:
        total = len(block)
        if total == 0:
            return np.zeros(len(regions))
        # The region loop re-reads the points many times; pull the block
        # off its backend once instead of once per region.
        points = block.materialize()
        values = []
        for region, label in regions:
            inside = sum(
                1
                for features, point_label in points
                if point_label == label and region.contains(features)
            )
            values.append(inside / total)
        return np.asarray(values)

    def deviation(
        self,
        block_a: Block[LabelledPoint],
        model_a: DecisionTree,
        block_b: Block[LabelledPoint],
        model_b: DecisionTree,
    ) -> DeviationResult:
        span = self.telemetry.phase("focus.deviation").start()
        regions = self.gcr(model_a, model_b)
        measures_a = self.measures(regions, block_a, model_a)
        measures_b = self.measures(regions, block_b, model_b)
        value = self.aggregate(measures_a, measures_b)
        self.telemetry.increment("focus.scans", 2)
        self.telemetry.increment("focus.missing_regions", len(regions))
        return DeviationResult(
            value=value,
            regions=len(regions),
            scans=2,
            seconds=span.stop(),
            missing_regions=len(regions),
        )
