"""Decision-tree model class: classifier, maintainers, FOCUS instantiation.

The paper's third model class.  DEMON itself defers incremental tree
construction to BOAT; here a from-scratch Gini tree plus two ``A_M``
implementations (leaf-refinement and naive rebuild) make the class
available to GEMM and the deviation framework.
"""

from repro.trees.deviation import TreeDeviation
from repro.trees.dtree import (
    DecisionTree,
    LabelledPoint,
    Region,
    TreeNode,
    gini,
)
from repro.trees.maintain import (
    LeafRefinementTreeMaintainer,
    RebuildingTreeMaintainer,
    TreeModel,
)

__all__ = [
    "DecisionTree",
    "TreeNode",
    "Region",
    "LabelledPoint",
    "gini",
    "TreeModel",
    "LeafRefinementTreeMaintainer",
    "RebuildingTreeMaintainer",
    "TreeDeviation",
]
