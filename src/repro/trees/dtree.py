"""A from-scratch decision-tree classifier over numeric features.

DEMON treats decision trees as one of its three model classes: the
FOCUS deviation framework is instantiable with them (§4), and GEMM can
wrap any incremental tree maintainer (the paper defers the maintenance
algorithm itself to the authors' BOAT work).  This module provides the
substrate: a binary-split tree grown greedily on the Gini criterion,
whose leaves expose the (hyper-rectangle, class-histogram) structure
FOCUS needs.

Tuples are ``(features, label)`` pairs where ``features`` is a tuple of
floats and ``label`` a small non-negative integer.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

#: One labelled example: (feature vector, class label).
LabelledPoint = tuple[tuple[float, ...], int]


def gini(counts: Sequence[int]) -> float:
    """Gini impurity of a class histogram."""
    total = sum(counts)
    if total == 0:
        return 0.0
    return 1.0 - sum((c / total) ** 2 for c in counts)


@dataclass
class Region:
    """An axis-aligned hyper-rectangle (the FOCUS structural unit).

    Bounds are half-open per dimension: ``lo[d] <= x[d] < hi[d]``, with
    ``±inf`` for unbounded sides.
    """

    lo: tuple[float, ...]
    hi: tuple[float, ...]

    def contains(self, features: Sequence[float]) -> bool:
        return all(
            self.lo[d] <= features[d] < self.hi[d]
            for d in range(len(self.lo))
        )

    def intersect(self, other: "Region") -> "Region | None":
        """The overlap of two regions, or ``None`` when empty."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(a >= b for a, b in zip(lo, hi)):
            return None
        return Region(lo, hi)


@dataclass
class TreeNode:
    """One tree node; leaves carry class counts, internal nodes a split.

    ``sample`` is a bounded reservoir of the examples a leaf absorbed,
    used only by the leaf-refinement maintainer (kept on the node so
    clones and serialized copies stay self-contained).
    """

    class_counts: dict[int, int] = field(default_factory=dict)
    feature: int | None = None
    threshold: float | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    sample: list = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    @property
    def size(self) -> int:
        return sum(self.class_counts.values())

    def majority_label(self) -> int:
        if not self.class_counts:
            return 0
        return max(self.class_counts.items(), key=lambda kv: (kv[1], -kv[0]))[0]


class DecisionTree:
    """Greedy Gini-split decision tree.

    Args:
        max_depth: Depth cap (root is depth 0).
        min_leaf_size: Do not split nodes smaller than this.
        min_impurity_decrease: Required Gini gain for a split.
        max_thresholds: Candidate thresholds evaluated per feature
            (quantile-spaced; keeps fitting near-linear).
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_leaf_size: int = 5,
        min_impurity_decrease: float = 1e-3,
        max_thresholds: int = 16,
    ):
        if max_depth < 0 or min_leaf_size < 1:
            raise ValueError("invalid tree growth parameters")
        self.max_depth = max_depth
        self.min_leaf_size = min_leaf_size
        self.min_impurity_decrease = min_impurity_decrease
        self.max_thresholds = max_thresholds
        self.root: TreeNode | None = None
        self.n_features = 0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(self, data: Sequence[LabelledPoint]) -> "DecisionTree":
        """Grow the tree on labelled examples; returns ``self``."""
        if not data:
            raise ValueError("cannot fit a decision tree on no data")
        self.n_features = len(data[0][0])
        features = np.asarray([d[0] for d in data], dtype=float)
        labels = np.asarray([d[1] for d in data], dtype=int)
        self.root = self._grow(features, labels, depth=0)
        return self

    def _grow(self, features: np.ndarray, labels: np.ndarray, depth: int) -> TreeNode:
        node = TreeNode(class_counts=self._histogram(labels))
        if (
            depth >= self.max_depth
            or len(labels) < 2 * self.min_leaf_size
            or len(set(labels.tolist())) == 1
        ):
            return node
        split = self._best_split(features, labels)
        if split is None:
            return node
        feature, threshold, _gain = split
        mask = features[:, feature] < threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(features[mask], labels[mask], depth + 1)
        node.right = self._grow(features[~mask], labels[~mask], depth + 1)
        return node

    @staticmethod
    def _histogram(labels: np.ndarray) -> dict[int, int]:
        values, counts = np.unique(labels, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def _best_split(self, features: np.ndarray, labels: np.ndarray):
        """The (feature, threshold) with the largest Gini gain."""
        parent = gini(list(self._histogram(labels).values()))
        total = len(labels)
        best = None
        best_gain = self.min_impurity_decrease
        for feature in range(features.shape[1]):
            column = features[:, feature]
            thresholds = np.unique(
                np.quantile(
                    column,
                    np.linspace(0.05, 0.95, self.max_thresholds),
                    method="nearest",
                )
            )
            for threshold in thresholds:
                mask = column < threshold
                n_left = int(mask.sum())
                if n_left < self.min_leaf_size or total - n_left < self.min_leaf_size:
                    continue
                left = gini(list(self._histogram(labels[mask]).values()))
                right = gini(list(self._histogram(labels[~mask]).values()))
                weighted = (n_left * left + (total - n_left) * right) / total
                gain = parent - weighted
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold), gain)
        return best

    # ------------------------------------------------------------------
    # Prediction & structure
    # ------------------------------------------------------------------

    def _require_fit(self) -> TreeNode:
        if self.root is None:
            raise ValueError("decision tree has not been fitted")
        return self.root

    def predict(self, features: Sequence[float]) -> int:
        """Class label for one feature vector."""
        node = self._require_fit()
        while not node.is_leaf:
            node = node.left if features[node.feature] < node.threshold else node.right
        return node.majority_label()

    def predict_many(self, rows: Sequence[Sequence[float]]) -> list[int]:
        """Class labels for many feature vectors."""
        return [self.predict(row) for row in rows]

    def accuracy(self, data: Sequence[LabelledPoint]) -> float:
        """Fraction of examples classified correctly."""
        if not data:
            return 0.0
        hits = sum(1 for x, y in data if self.predict(x) == y)
        return hits / len(data)

    def leaf_regions(self) -> list[tuple[Region, dict[int, int]]]:
        """Every leaf as (hyper-rectangle, class histogram) — the FOCUS
        structural + measure components."""
        root = self._require_fit()
        result: list[tuple[Region, dict[int, int]]] = []
        lo = tuple(-np.inf for _ in range(self.n_features))
        hi = tuple(np.inf for _ in range(self.n_features))
        stack = [(root, lo, hi)]
        while stack:
            node, node_lo, node_hi = stack.pop()
            if node.is_leaf:
                result.append((Region(node_lo, node_hi), dict(node.class_counts)))
                continue
            d, threshold = node.feature, node.threshold
            left_hi = tuple(
                threshold if i == d else v for i, v in enumerate(node_hi)
            )
            right_lo = tuple(
                threshold if i == d else v for i, v in enumerate(node_lo)
            )
            stack.append((node.left, node_lo, left_hi))
            stack.append((node.right, right_lo, node_hi))
        return result

    def depth(self) -> int:
        """Maximum depth of any leaf (root = 0)."""
        root = self._require_fit()
        best = 0
        stack = [(root, 0)]
        while stack:
            node, depth = stack.pop()
            if node.is_leaf:
                best = max(best, depth)
            else:
                stack.append((node.left, depth + 1))
                stack.append((node.right, depth + 1))
        return best

    def n_leaves(self) -> int:
        """Number of leaves."""
        return len(self.leaf_regions())
