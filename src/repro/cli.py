"""Command-line interface: ``python -m repro.cli <command>``.

Subcommands:

* ``generate`` — write a synthetic dataset (Quest transactions, cluster
  points, or the 21-day proxy trace) as JSON lines, one block per line.
* ``monitor`` — stream a Quest workload through a MiningSession and
  print per-block model summaries (UW or MRW, optional BSS bits).
* ``patterns`` — run compact-sequence discovery over the proxy trace at
  a chosen granularity and print the discovered selection sequences.
* ``info`` — print the library's subsystem inventory.

``monitor`` and ``patterns`` accept ``--json``, replacing the text
report with a single ``{"schema": 1, "rows": [...]}`` document whose
rows follow the benchmark ``emit_json`` convention (a ``"bench"`` key
plus flat fields) and carry the session's telemetry report.

The CLI is a thin veneer over the public API; anything here is three
lines of library code.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import __version__


def _add_generate(subparsers) -> None:
    parser = subparsers.add_parser(
        "generate", help="write a synthetic dataset as JSON lines"
    )
    parser.add_argument(
        "kind", choices=["quest", "clusters", "trace"], help="generator to run"
    )
    parser.add_argument("--blocks", type=int, default=4, help="number of blocks")
    parser.add_argument(
        "--block-size", type=int, default=1000, help="tuples per block"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--name",
        default="2M.20L.1I.4pats.4plen",
        help="paper-style dataset name (quest/clusters kinds)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.005, help="scale for --name parsing"
    )
    parser.add_argument(
        "--granularity", type=int, default=24, help="trace block hours"
    )
    parser.add_argument(
        "--output", default="-", help="output path ('-' for stdout)"
    )


def _add_monitor(subparsers) -> None:
    parser = subparsers.add_parser(
        "monitor", help="stream a Quest workload through a MiningSession"
    )
    parser.add_argument("--blocks", type=int, default=6)
    parser.add_argument("--block-size", type=int, default=800)
    parser.add_argument("--minsup", type=float, default=0.02)
    parser.add_argument(
        "--counter", choices=["ptscan", "ecut", "ecut+"], default="ecut"
    )
    parser.add_argument(
        "--window", type=int, default=0,
        help="most-recent-window size (0 = unrestricted window)",
    )
    parser.add_argument(
        "--bss", default="",
        help="BSS bits, e.g. '101' (window-relative under --window, "
        "window-independent prefix otherwise)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backend", choices=["memory", "mmap", "tiered"], default=None,
        help="block storage backend the session ingests onto "
        "(tiered = mmap with compressed cold blocks; "
        "default: DEMON_BLOCK_BACKEND or plain in-memory blocks)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for sharded maintenance "
        "(default: DEMON_WORKERS or 1 = serial); results are "
        "byte-identical to a serial run",
    )
    parser.add_argument(
        "--scheduler", choices=["eager", "deviation"], default=None,
        help="maintenance scheduling policy (deviation = defer model "
        "maintenance while a sampled drift estimate stays below "
        "threshold; flushed results are byte-identical to eager; "
        "default: DEMON_SCHEDULER or eager)",
    )
    parser.add_argument(
        "--scheduler-threshold", type=float, default=None,
        help="drift significance in (0, 1) that triggers catch-up "
        "under --scheduler deviation "
        "(default: DEMON_SCHEDULER_THRESHOLD or 0.95)",
    )
    parser.add_argument(
        "--scheduler-max-pending", type=int, default=None,
        help="staleness bound: catch-up always runs once this many "
        "blocks are deferred (default: DEMON_SCHEDULER_MAX_PENDING or 8)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON document (benchmark row format) instead of text",
    )


def _add_patterns(subparsers) -> None:
    parser = subparsers.add_parser(
        "patterns", help="compact-sequence discovery on the proxy trace"
    )
    parser.add_argument("--granularity", type=int, default=24)
    parser.add_argument("--trace-scale", type=float, default=0.03)
    parser.add_argument("--minsup", type=float, default=0.02)
    parser.add_argument("--alpha", type=float, default=0.95)
    parser.add_argument("--min-length", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON document (benchmark row format) instead of text",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DEMON (ICDE 2000) reproduction — mining and "
        "monitoring systematically evolving data",
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_generate(subparsers)
    _add_monitor(subparsers)
    _add_patterns(subparsers)
    subparsers.add_parser("info", help="print the subsystem inventory")
    return parser


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def cmd_generate(args, out) -> int:
    from repro.datagen import (
        ClusterDataGenerator,
        ClusterDataParams,
        ProxyTraceGenerator,
        QuestGenerator,
        QuestParams,
    )

    if args.kind == "quest":
        generator = QuestGenerator(
            QuestParams.from_name(args.name, scale=args.scale), seed=args.seed
        )
        blocks = [
            generator.block(i + 1, count=args.block_size)
            for i in range(args.blocks)
        ]
    elif args.kind == "clusters":
        name = args.name if args.name.endswith("d") else "1M.50c.5d"
        generator = ClusterDataGenerator(
            ClusterDataParams.from_name(name, scale=args.scale), seed=args.seed
        )
        blocks = [
            generator.block(i + 1, count=args.block_size)
            for i in range(args.blocks)
        ]
    else:
        blocks = ProxyTraceGenerator(
            scale=args.scale * 10, seed=args.seed
        ).blocks(args.granularity)

    sink = sys.stdout if args.output == "-" else open(args.output, "w")
    try:
        for block in blocks:
            record = {
                "block_id": block.block_id,
                "label": block.label,
                "tuples": [list(t) for t in block.iter_records()],
            }
            print(json.dumps(record), file=sink)
    finally:
        if sink is not sys.stdout:
            sink.close()
    print(f"wrote {len(blocks)} blocks", file=out)
    return 0


def _monitor_scheduler(args):
    """The scheduler `monitor` runs with — flags over ambient env."""
    from repro.scheduling import (
        DEFAULT_MAX_PENDING,
        DEFAULT_THRESHOLD,
        DeviationScheduler,
        ambient_scheduler_max_pending,
        ambient_scheduler_name,
        ambient_scheduler_threshold,
    )

    name = args.scheduler
    if name is None:
        name = ambient_scheduler_name() or "eager"
    if name != "deviation":
        return "eager"
    threshold = args.scheduler_threshold
    if threshold is None:
        threshold = ambient_scheduler_threshold()
    max_pending = args.scheduler_max_pending
    if max_pending is None:
        max_pending = ambient_scheduler_max_pending()
    try:
        return DeviationScheduler(
            threshold=threshold if threshold is not None else DEFAULT_THRESHOLD,
            max_pending=(
                max_pending if max_pending is not None else DEFAULT_MAX_PENDING
            ),
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def cmd_monitor(args, out) -> int:
    from repro import MiningSession, MostRecentWindow
    from repro.core.bss import WindowIndependentBSS, WindowRelativeBSS
    from repro.datagen import QuestGenerator, QuestParams
    from repro.itemsets import BordersMaintainer

    span = MostRecentWindow(args.window) if args.window else None
    bss = None
    if args.bss:
        bits = [int(b) for b in args.bss]
        if args.window:
            if len(bits) != args.window:
                raise SystemExit("--bss length must equal --window")
            bss = WindowRelativeBSS(bits)
        else:
            bss = WindowIndependentBSS(bits, default=1)

    session = MiningSession(
        BordersMaintainer(args.minsup, counter=args.counter),
        span=span,
        bss=bss,
        backend=args.backend,
        workers=args.workers,
        scheduler=_monitor_scheduler(args),
    )
    params = QuestParams(
        n_transactions=args.block_size,
        avg_transaction_length=8,
        n_items=200,
        n_patterns=50,
        avg_pattern_length=3,
    )
    generator = QuestGenerator(params, seed=args.seed)
    rows = []
    # The last fully-maintained model summary.  A deferring scheduler
    # leaves the model intentionally stale between catch-ups; reading
    # it through current_model() would force a flush per block and
    # defeat the deferral, so deferred arrivals re-report this summary
    # (annotated with how many blocks it lags).
    last = None
    for block_id in range(1, args.blocks + 1):
        # Stream the arriving records through the session's ingest
        # spine; the session assigns block id t+1 and routes storage
        # onto its configured backend.
        report = session.ingest(generator.iter_transactions(args.block_size))
        if report.pending == 0 or last is None:
            model = session.current_model()
            last = (
                session.current_selection(),
                len(model.frequent),
                len(model.border),
                model.n_transactions,
            )
        selection, frequent, border, n_transactions = last
        if args.json:
            delta = report.telemetry
            io = delta.io_totals()
            rows.append(
                {
                    "bench": "cli_monitor",
                    "t": block_id,
                    # Per-worker attribution rides inside "telemetry"
                    # as parallel.w{id}.* phase/counter entries.
                    "workers": session.workers,
                    "scheduler": session.scheduler.kind,
                    "decision": report.decision,
                    "maintained": report.maintained,
                    "pending": report.pending,
                    "selection": selection,
                    "frequent": frequent,
                    "border": border,
                    "n_transactions": n_transactions,
                    "model_updated": report.model_updated,
                    "bytes_read": io.bytes_read,
                    "cache_hits": io.cache_hits,
                    "telemetry": delta.report(),
                }
            )
        else:
            lag = f" pending={report.pending}" if report.pending else ""
            print(
                f"block {block_id}: selection={selection} "
                f"|L|={frequent} |NB-|={border} "
                f"N={n_transactions}{lag}",
                file=out,
            )
    flushed = session.flush()
    if flushed:
        model = session.current_model()
        selection = session.current_selection()
        if args.json:
            # The final row reflects the flushed (caught-up) model, so
            # downstream consumers always see the end-of-stream state.
            rows[-1].update(
                maintained=rows[-1]["maintained"] + flushed,
                pending=0,
                selection=selection,
                frequent=len(model.frequent),
                border=len(model.border),
                n_transactions=model.n_transactions,
            )
        else:
            print(
                f"flush: caught up {flushed} deferred blocks; "
                f"selection={selection} |L|={len(model.frequent)} "
                f"|NB-|={len(model.border)} N={model.n_transactions}",
                file=out,
            )
    if args.json:
        print(json.dumps({"schema": 1, "rows": rows}), file=out)
    return 0


def cmd_patterns(args, out) -> int:
    from repro import MiningSession
    from repro.datagen import ProxyTraceGenerator
    from repro.deviation import BlockSimilarity, ItemsetDeviation
    from repro.patterns import CompactSequenceMiner, extract_cyclic, period_of

    blocks = ProxyTraceGenerator(scale=args.trace_scale, seed=args.seed).blocks(
        args.granularity
    )
    miner = CompactSequenceMiner(
        BlockSimilarity(
            ItemsetDeviation(minsup=args.minsup, max_size=2),
            alpha=args.alpha,
            method="chi2",
        )
    )
    session = MiningSession(pattern_miner=miner)
    for block in blocks:
        session.observe(block)
    sequences = session.discovered_patterns(min_length=args.min_length)
    if args.json:
        snapshot = session.telemetry.snapshot()
        rows = [
            {
                "bench": "cli_patterns",
                "t": session.t,
                "granularity": args.granularity,
                "sequences": len(sequences),
                "comparisons": snapshot.counter("patterns.comparisons"),
                "scans": snapshot.counter("patterns.scans"),
                "missing_regions": snapshot.counter("patterns.missing_regions"),
                "telemetry": snapshot.report(),
            }
        ]
        for sequence in sequences:
            cyclic = extract_cyclic(sequence)
            period = period_of(cyclic.block_ids) if cyclic else None
            rows.append(
                {
                    "bench": "cli_patterns_sequence",
                    "blocks": sequence.block_ids,
                    "length": len(sequence),
                    "cyclic": cyclic.block_ids if cyclic and period else None,
                    "period": period,
                }
            )
        print(json.dumps({"schema": 1, "rows": rows}), file=out)
        return 0
    print(f"{len(sequences)} compact sequences "
          f"(granularity {args.granularity}h):", file=out)
    for sequence in sequences:
        labels = [blocks[i - 1].label for i in sequence.block_ids[:3]]
        print(f"  blocks {sequence.block_ids}", file=out)
        print(f"    starts: {labels}", file=out)
        cyclic = extract_cyclic(sequence)
        if cyclic and period_of(cyclic.block_ids):
            print(
                f"    cyclic: {cyclic.block_ids} "
                f"(period {period_of(cyclic.block_ids)})",
                file=out,
            )
    return 0


def cmd_info(out) -> int:
    lines = [
        f"repro {__version__} — DEMON (ICDE 2000) reproduction",
        "",
        "subsystems:",
        "  repro.core        data span, BSS, GEMM, MiningSession",
        "  repro.itemsets    Apriori, BORDERS, PT-Scan/ECUT/ECUT+, FUP, rules",
        "  repro.clustering  BIRCH(+), CF-tree, K-Means, incremental DBSCAN",
        "  repro.trees       decision trees, incremental maintainers",
        "  repro.deviation   FOCUS, significance, block similarity",
        "  repro.patterns    compact sequences, cyclic post-processing",
        "  repro.datagen     Quest, cluster data, proxy trace",
        "  repro.storage     metered block store, model vault",
        "",
        "experiments: pytest benchmarks/ --benchmark-only -s",
    ]
    print("\n".join(lines), file=out)
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.storage.engine import ambient_backend_name

    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.scheduling import ambient_scheduler_name

    try:
        # Fail a DEMON_BLOCK_BACKEND / DEMON_SCHEDULER* typo here, at
        # parse time, not deep inside the first ingest of a long run.
        ambient_backend_name()
        ambient_scheduler_name()
    except ValueError as exc:
        parser.error(str(exc))
    if args.command == "generate":
        return cmd_generate(args, out)
    if args.command == "monitor":
        return cmd_monitor(args, out)
    if args.command == "patterns":
        return cmd_patterns(args, out)
    return cmd_info(out)


if __name__ == "__main__":
    raise SystemExit(main())
