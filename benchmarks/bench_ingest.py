"""Ingest-spine benchmark — in-memory vs memory-mapped block backends.

DEMON's storage premise is that the evolving database need not fit in
RAM: blocks are written once on arrival and consumed chunk-wise ever
after.  This benchmark measures both halves of that bargain on the two
shipped backends:

* **ingest** — streaming one block's records into backend storage;
* **scan** — one full chunked pass over the stored block (the access
  pattern of every maintainer);
* **chunk-size ablation** — scan cost as ``chunk_size`` varies, the
  knob ``DEMON_BLOCK_CHUNK`` exposes;
* **peak RSS guard** — a subprocess per backend ingests and scans one
  deliberately large dense block; the mmap backend must peak *below*
  the in-memory backend, or the whole point of the columnar layout has
  regressed.

Run:  pytest benchmarks/bench_ingest.py --benchmark-only -s
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time

import pytest

from benchmarks.common import emit_json, fmt_ms, print_table, scaled
from repro.datagen.quest import QuestGenerator, QuestParams
from repro.storage.engine import InMemoryBackend, MmapBackend

DATASET = "2M.20L.1I.4pats.4plen"
N_TRANSACTIONS = scaled(2_000_000)
CHUNK_SIZES = (256, 1024, 4096, 16384)

#: The RSS guard's block is fixed-size (not SCALE-scaled): the gap
#: between materialized tuples and streamed columns only shows once the
#: block dwarfs interpreter noise.
RSS_ROWS = 200_000
RSS_WIDTH = 8


def transactions(count: int = N_TRANSACTIONS) -> list:
    params = QuestParams.from_name(DATASET)
    return list(QuestGenerator(params, seed=11).iter_transactions(count))


def make_backend(kind: str, root, chunk_size: int | None = None):
    if kind == "memory":
        return InMemoryBackend(chunk_size=chunk_size)
    return MmapBackend(root=str(root), chunk_size=chunk_size)


def scan(block) -> int:
    total = 0
    for chunk in block.iter_chunks():
        total += len(chunk)
    return total


@pytest.mark.parametrize("kind", ["memory", "mmap"])
def test_ingest_and_scan(benchmark, kind, tmp_path):
    """One block's write-once / read-forever cycle on each backend."""
    records = transactions()

    def cycle():
        backend = make_backend(kind, tmp_path)
        t0 = time.perf_counter()
        block = backend.ingest(1, iter(records))
        t_ingest = time.perf_counter() - t0
        t0 = time.perf_counter()
        seen = scan(block)
        t_scan = time.perf_counter() - t0
        return block, seen, t_ingest, t_scan

    block, seen, t_ingest, t_scan = benchmark.pedantic(
        cycle, rounds=3, iterations=1
    )
    assert seen == len(records) == block.num_records
    emit_json(
        "ingest",
        backend=kind,
        dataset=DATASET,
        records=len(records),
        nbytes=block.nbytes,
        ingest_seconds=t_ingest,
        scan_seconds=t_scan,
    )


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
def test_chunk_size_ablation(benchmark, chunk_size, tmp_path):
    """Scan cost across the ``DEMON_BLOCK_CHUNK`` ablation grid."""
    records = transactions()
    block = make_backend("mmap", tmp_path, chunk_size=chunk_size).ingest(
        1, iter(records)
    )

    def timed_scan():
        t0 = time.perf_counter()
        seen = scan(block)
        return seen, time.perf_counter() - t0

    seen, elapsed = benchmark.pedantic(timed_scan, rounds=3, iterations=1)
    assert seen == len(records)
    emit_json(
        "ingest_chunks",
        backend="mmap",
        dataset=DATASET,
        records=len(records),
        chunk_size=chunk_size,
        scan_seconds=elapsed,
    )


# ----------------------------------------------------------------------
# Peak-RSS guard
# ----------------------------------------------------------------------

_RSS_CHILD = """
import resource, sys, tempfile
from repro.storage.engine import InMemoryBackend, MmapBackend

kind, rows, width = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])

def points():
    value = 0.0
    for _ in range(rows):
        value = (value + 0.734) % 17.0
        yield tuple(value + float(j) for j in range(width))

if kind == "memory":
    backend = InMemoryBackend(chunk_size=4096)
else:
    backend = MmapBackend(root=tempfile.mkdtemp(), chunk_size=4096)
block = backend.ingest(1, points())
seen = 0
for chunk in block.iter_chunks():
    seen += len(chunk)
assert seen == rows
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""


def peak_rss_kb(kind: str) -> int:
    """Ingest + scan one large dense block in a child; return its peak RSS."""
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    parts = [os.path.join(repo_root, "src")]
    if env.get("PYTHONPATH"):
        parts.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    out = subprocess.run(
        [sys.executable, "-c", _RSS_CHILD, kind, str(RSS_ROWS), str(RSS_WIDTH)],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return int(out.stdout.strip())


def test_mmap_peaks_below_memory_on_large_blocks(benchmark):
    """The bench guard: columnar streaming must beat materialization."""

    def measure():
        return peak_rss_kb("memory"), peak_rss_kb("mmap")

    memory_kb, mmap_kb = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit_json(
        "ingest_rss",
        rows=RSS_ROWS,
        width=RSS_WIDTH,
        memory_rss_kb=memory_kb,
        mmap_rss_kb=mmap_kb,
    )
    print_table(
        f"Peak RSS, one dense block of {RSS_ROWS}x{RSS_WIDTH} floats",
        ["backend", "peak RSS (MB)"],
        [
            ["in-memory", f"{memory_kb / 1024:.1f}"],
            ["mmap", f"{mmap_kb / 1024:.1f}"],
        ],
    )
    # Not just below — below with a margin, so a slow regression cannot
    # hide inside run-to-run noise.
    assert mmap_kb < 0.8 * memory_kb, (
        f"mmap backend peaked at {mmap_kb} KB vs {memory_kb} KB in-memory"
    )


def test_ingest_table(benchmark):
    """Human-readable ingest/scan summary across both backends."""
    records = transactions()

    def run():
        rows = []
        for kind in ("memory", "mmap"):
            backend = make_backend(kind, tempfile.mkdtemp())
            t0 = time.perf_counter()
            block = backend.ingest(1, iter(records))
            t_ingest = time.perf_counter() - t0
            t0 = time.perf_counter()
            scan(block)
            t_scan = time.perf_counter() - t0
            rows.append([kind, len(records), fmt_ms(t_ingest), fmt_ms(t_scan)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Ingest spine, {DATASET} ({N_TRANSACTIONS} transactions)",
        ["backend", "records", "ingest (ms)", "scan (ms)"],
        rows,
    )
