"""Figure 3 (table) — extra disk space for materialized frequent
2-itemset TID-lists.

Paper numbers for {2M,4M}.20L.1I.4pats.4plen: 25.3% of the dataset size
at κ = 0.008, 11.8% at κ = 0.010, 5.3% at κ = 0.012 — the space cost of
ECUT+ shrinks quickly as the threshold rises (fewer, rarer 2-itemsets).

Run:  pytest benchmarks/bench_fig3_space.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_table, quest_blocks
from repro.itemsets.borders import BordersMaintainer, ItemsetMiningContext

DATASET = "2M.20L.1I.4pats.4plen"
THRESHOLDS = (0.008, 0.010, 0.012)
N_BLOCKS = 4


def materialization_percentages() -> dict[float, float]:
    """% extra space for frequent-2-itemset TID-lists per threshold."""
    blocks = quest_blocks(DATASET, N_BLOCKS, seed=2)
    percentages = {}
    for minsup in THRESHOLDS:
        context = ItemsetMiningContext()
        maintainer = BordersMaintainer(minsup, context, counter="ecut+")
        maintainer.build(blocks)
        dataset_bytes = context.block_store.total_nbytes()
        pair_bytes = context.pairs.total_nbytes()
        percentages[minsup] = 100.0 * pair_bytes / dataset_bytes
    return percentages


@pytest.mark.parametrize("minsup", THRESHOLDS)
def test_fig3_materialization_cost(benchmark, minsup):
    """Time to build + pair-materialize one block at each threshold."""
    blocks = quest_blocks(DATASET, N_BLOCKS, seed=2)

    def build():
        context = ItemsetMiningContext()
        maintainer = BordersMaintainer(minsup, context, counter="ecut+")
        maintainer.build(blocks)
        return context.pairs.total_nbytes()

    nbytes = benchmark.pedantic(build, rounds=1, iterations=1)
    assert nbytes > 0


def test_fig3_table_and_shape(benchmark):
    """Print the Figure 3 table and assert the decreasing-space shape."""
    percentages = benchmark.pedantic(
        materialization_percentages, rounds=1, iterations=1
    )
    rows = [
        [DATASET, f"{minsup:.3f}", f"{percentages[minsup]:.1f}"]
        for minsup in THRESHOLDS
    ]
    print_table(
        "Figure 3: % extra space for frequent 2-itemset TID-lists",
        ["dataset", "minsup", "% extra space"],
        rows,
    )
    # Shape: space shrinks as the threshold rises (paper: 25.3 -> 11.8
    # -> 5.3), and stays a modest fraction of the dataset (< ~40%).
    assert percentages[0.008] > percentages[0.010] > percentages[0.012]
    assert percentages[0.008] < 60.0
