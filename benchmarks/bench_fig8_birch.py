"""Figure 8 — BIRCH+ vs non-incremental BIRCH vs new-block size.

Paper setup: a base block 1M.50c.5d is clustered; a second block of
100K–800K points (same 50-cluster structure, 2% uniform noise) arrives.
BIRCH+ resumes phase 1 on the live CF-tree and re-runs the cheap
phase 2; the baseline re-runs BIRCH over base + new from scratch.

Expected shape (paper): BIRCH+'s time grows only with the *new block*,
the re-run's with the *total* data, so BIRCH+ wins by a widening
margin; the phase-2 time is negligible throughout.

Run:  pytest benchmarks/bench_fig8_birch.py --benchmark-only -s
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import (
    cluster_points,
    fmt_ms,
    points_block,
    print_table,
    scaled,
)
from repro.clustering.birch import birch_cluster
from repro.clustering.birch_plus import BirchPlusMaintainer
from repro.clustering.model import match_clusters

DATASET = "1M.50c.5d"
K = 50
THRESHOLD = 1.5
MAX_LEAF_ENTRIES = 1024
BASE_POINTS = scaled(1_000_000)
NEW_SIZES = tuple(scaled(n) for n in (100_000, 200_000, 400_000, 800_000))

_base_state = None


def maintainer() -> BirchPlusMaintainer:
    return BirchPlusMaintainer(
        k=K, threshold=THRESHOLD, max_leaf_entries=MAX_LEAF_ENTRIES
    )


def base_state():
    """BIRCH+ state over the base block, built once."""
    global _base_state
    if _base_state is None:
        block = points_block(DATASET, BASE_POINTS, block_id=1, seed=0)
        _base_state = maintainer().build([block])
    return _base_state


def run_birch_plus(new_size: int):
    """Clone the live state and absorb the new block; return timings."""
    m = maintainer()
    state = m.clone(base_state())
    new_block = points_block(DATASET, new_size, block_id=2, seed=1)
    start = time.perf_counter()
    state = m.add_block(state, new_block)
    elapsed = time.perf_counter() - start
    return state, elapsed, m.last_timings


def run_birch_rerun(new_size: int):
    """Non-incremental baseline: recluster everything from scratch."""
    base = cluster_points(DATASET, BASE_POINTS, seed=0)
    fresh = cluster_points(DATASET, new_size, seed=1)
    start = time.perf_counter()
    model, _tree, timings = birch_cluster(
        list(base) + list(fresh),
        k=K,
        threshold=THRESHOLD,
        max_leaf_entries=MAX_LEAF_ENTRIES,
        block_ids=[1, 2],
    )
    elapsed = time.perf_counter() - start
    return model, elapsed, timings


@pytest.mark.parametrize("new_size", [NEW_SIZES[0], NEW_SIZES[-1]])
def test_fig8_birch_plus(benchmark, new_size):
    state, _elapsed, _timings = benchmark.pedantic(
        run_birch_plus, args=(new_size,), rounds=1, iterations=1
    )
    assert state.clusters.k == K


@pytest.mark.parametrize("new_size", [NEW_SIZES[0], NEW_SIZES[-1]])
def test_fig8_birch_rerun(benchmark, new_size):
    model, _elapsed, _timings = benchmark.pedantic(
        run_birch_rerun, args=(new_size,), rounds=1, iterations=1
    )
    assert model.k == K


def test_fig8_table_and_shape(benchmark):
    """Print the Figure 8 series and assert its shape."""

    def sweep():
        results = {}
        for new_size in NEW_SIZES:
            state, plus_time, plus_timings = run_birch_plus(new_size)
            model, rerun_time, _timings = run_birch_rerun(new_size)
            results[new_size] = (
                plus_time,
                rerun_time,
                plus_timings.phase2_seconds,
                state,
                model,
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            size,
            fmt_ms(results[size][1]),
            fmt_ms(results[size][0]),
            fmt_ms(results[size][2]),
            f"{results[size][1] / results[size][0]:.1f}x",
        ]
        for size in NEW_SIZES
    ]
    print_table(
        f"Figure 8: {DATASET} base={BASE_POINTS} pts + new block "
        "(times in ms)",
        ["new block", "BIRCH", "BIRCH+", "BIRCH+ phase2", "speedup"],
        rows,
    )

    for size in NEW_SIZES:
        plus_time, rerun_time, phase2, state, model = results[size]
        # BIRCH+ beats the full re-run at every size.
        assert plus_time < rerun_time, f"size={size}"
        # Phase 2 is a small share of the incremental cost.
        assert phase2 < max(plus_time, 1e-4)
        # Both routes find essentially the same clusters.
        matches = match_clusters(state.clusters, model)
        close = sum(1 for _, _, d in matches if d < 3.0)
        assert close >= int(0.8 * K), f"only {close}/{K} centroids matched"
    # The paper's regime: the smaller the new block relative to the
    # base, the larger BIRCH+'s advantage — assert a solid margin where
    # it is widest (the smallest new block).
    assert results[NEW_SIZES[0]][1] > results[NEW_SIZES[0]][0] * 2.0
