"""Benchmark-session setup: start each run with a fresh tables artifact."""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def fresh_tables_file():
    """Truncate bench_tables.txt so one run's tables don't mix with the
    next run's (print_table appends)."""
    from benchmarks.common import TABLES_PATH

    with open(TABLES_PATH, "w") as sink:
        sink.write(
            "# Paper-style result tables from the latest benchmark run\n"
            "# (regenerate with: pytest benchmarks/ --benchmark-only)\n"
        )
    yield
    if os.path.exists(TABLES_PATH):
        print(f"\npaper-style tables written to {TABLES_PATH}")
