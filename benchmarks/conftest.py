"""Benchmark-session setup: fresh tables artifact + optional JSON dump."""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        action="store",
        default=None,
        metavar="PATH",
        help=(
            "write machine-readable benchmark rows (emit_json) to PATH "
            "at session end; DEMON_BENCH_JSON is the env equivalent"
        ),
    )


@pytest.fixture(scope="session", autouse=True)
def fresh_tables_file():
    """Truncate bench_tables.txt so one run's tables don't mix with the
    next run's (print_table appends)."""
    from benchmarks.common import TABLES_PATH

    with open(TABLES_PATH, "w") as sink:
        sink.write(
            "# Paper-style result tables from the latest benchmark run\n"
            "# (regenerate with: pytest benchmarks/ --benchmark-only)\n"
        )
    yield
    if os.path.exists(TABLES_PATH):
        print(f"\npaper-style tables written to {TABLES_PATH}")


@pytest.fixture(scope="session", autouse=True)
def json_artifact(request):
    """Write collected emit_json rows when --json / DEMON_BENCH_JSON asks."""
    yield
    path = request.config.getoption("--json") or os.environ.get(
        "DEMON_BENCH_JSON"
    )
    if path:
        from benchmarks.common import JSON_ROWS, write_json

        write_json(path)
        print(f"\n{len(JSON_ROWS)} machine-readable rows written to {path}")
