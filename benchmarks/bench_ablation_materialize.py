"""Ablation — the ECUT+ 2-itemset materialization heuristic (§3.1.1).

The paper picks which 2-itemset TID-lists to materialize under a space
budget by *descending overall support* ("an itemset with higher overall
support is chosen before another with lower support"), arguing it
approximates the NP-hard view-selection problem well.  This ablation
compares, at several budgets:

* the paper's support-descending choice,
* a support-*ascending* choice (adversarial),
* a random choice,

measuring the bytes ECUT+ fetches to count a workload of border
itemsets.  The heuristic should dominate: high-support pairs are
subsets of more counting targets, so they turn more item-list pairs
into single shorter pair-lists.

Run:  pytest benchmarks/bench_ablation_materialize.py --benchmark-only -s
"""

from __future__ import annotations

import random

import pytest

from benchmarks.common import print_table, quest_blocks
from repro.itemsets.borders import BordersMaintainer, ItemsetMiningContext
from repro.itemsets.counting import ECUTPlusCounter
from repro.itemsets.materialize import PairTidListStore
from repro.itemsets.tidlist import TID_BYTES

DATASET = "2M.20L.1I.4pats.4plen"
MINSUP = 0.01
N_BLOCKS = 2
BUDGET_FRACTIONS = (0.05, 0.15, 0.4)

_setup = None


def ablation_setup():
    """Blocks, model, and a counting workload of big border itemsets."""
    global _setup
    if _setup is None:
        blocks = quest_blocks(DATASET, N_BLOCKS, seed=3)
        context = ItemsetMiningContext()
        maintainer = BordersMaintainer(MINSUP, context, counter="ecut")
        model = maintainer.build(blocks)
        rng = random.Random(7)
        big = sorted(x for x in model.border if len(x) >= 3)
        workload = rng.sample(big, min(120, len(big)))
        _setup = (blocks, context, model, workload)
    return _setup


def fetched_bytes(strategy: str, budget_fraction: float) -> int:
    """Bytes ECUT+ fetches under one materialization strategy."""
    blocks, context, model, workload = ablation_setup()
    pairs = list(model.frequent_of_size(2))
    rng = random.Random(11)

    if strategy == "support-desc":
        ordering = {p: model.frequent[p] for p in pairs}
    elif strategy == "support-asc":
        ordering = {p: -model.frequent[p] for p in pairs}
    elif strategy == "random":
        ordering = {p: rng.random() for p in pairs}
    elif strategy == "none":
        ordering = {}
        pairs = []
    else:
        raise ValueError(strategy)

    pair_store = PairTidListStore()
    for block in blocks:
        budget = int(budget_fraction * context.block_store.nbytes(block.block_id))
        pair_store.materialize_block(
            block,
            pairs,
            overall_supports=ordering,
            budget_bytes=budget,
            base_tid=context.tidlists.base_tid(block.block_id),
        )
    counter = ECUTPlusCounter(context.tidlists, pair_store)
    tid_before = context.tidlists.stats.bytes_read
    pair_before = pair_store.stats.bytes_read
    counter.count(workload, [b.block_id for b in blocks])
    return (
        context.tidlists.stats.bytes_read
        - tid_before
        + pair_store.stats.bytes_read
        - pair_before
    )


@pytest.mark.parametrize("strategy", ["support-desc", "random", "none"])
def test_ablation_strategy(benchmark, strategy):
    nbytes = benchmark.pedantic(
        fetched_bytes, args=(strategy, 0.15), rounds=1, iterations=1
    )
    assert nbytes > 0


def test_ablation_table_and_shape(benchmark):
    """Print the sweep and assert the heuristic's dominance."""

    def sweep():
        results = {}
        for fraction in BUDGET_FRACTIONS:
            for strategy in ("support-desc", "support-asc", "random", "none"):
                results[(strategy, fraction)] = fetched_bytes(strategy, fraction)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [
            f"{fraction:.0%}",
            *(
                f"{results[(s, fraction)] / 1024:.0f}"
                for s in ("support-desc", "support-asc", "random", "none")
            ),
        ]
        for fraction in BUDGET_FRACTIONS
    ]
    print_table(
        "Ablation: ECUT+ bytes fetched (KiB) by materialization strategy "
        "vs space budget",
        ["budget", "support-desc", "support-asc", "random", "no pairs"],
        rows,
    )
    for fraction in BUDGET_FRACTIONS:
        best = results[("support-desc", fraction)]
        # The paper's heuristic beats the adversarial ordering and is
        # always better than not materializing at all.  (A *random*
        # choice can edge it out at very tight budgets — high-support
        # pairs carry the longest lists, so fewer of them fit; see
        # EXPERIMENTS.md for the measured trade-off.)
        assert best <= results[("support-asc", fraction)]
        assert best < results[("none", fraction)]
    # More budget never hurts the heuristic.
    assert (
        results[("support-desc", BUDGET_FRACTIONS[-1])]
        <= results[("support-desc", BUDGET_FRACTIONS[0])]
    )
