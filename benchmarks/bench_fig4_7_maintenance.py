"""Figures 4–7 — total maintenance time, detection vs update phases.

Paper setup: the first block is 2M.20L.1I.4pats.4plen; a second block
with *drifted* distribution parameters is added and the model updated.
Figures 4/5 drift the pattern pool (8pats.4plen) at κ = 0.008 / 0.009;
Figures 6/7 drift the pattern length (4pats.5plen) at the same two
thresholds.  The second block's size sweeps 0.5%–20% of the first.

Expected shape (paper):
* the update phase dominates total time for PT-Scan, whereas with ECUT
  or ECUT+ in the update phase, detection dominates;
* for second blocks up to ~5% of the base, ECUT/ECUT+ update is 2–10x
  faster than PT-Scan's;
* everything grows with block size.

Run:  pytest benchmarks/bench_fig4_7_maintenance.py --benchmark-only -s
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.common import (
    SCALE,
    emit_json,
    fmt_ms,
    print_table,
    quest_blocks,
    quest_increment,
    scaled,
)
from repro.itemsets.borders import (
    BordersMaintainer,
    ItemsetMiningContext,
    MaintenanceStats,
)
from repro.itemsets.counting import ECUTPlusCounter

FIRST_BLOCK_NAME = "2M.20L.1I.4pats.4plen"
#: figure id -> (second-block dataset name, minsup)
FIGURES = {
    "fig4": ("2M.20L.1I.8pats.4plen", 0.008),
    "fig5": ("2M.20L.1I.8pats.4plen", 0.009),
    "fig6": ("2M.20L.1I.4pats.5plen", 0.008),
    "fig7": ("2M.20L.1I.4pats.5plen", 0.009),
}
#: Paper sweeps 10K..400K against 2M: the same 0.5%..20% ratios.
SECOND_BLOCK_SIZES = tuple(
    scaled(n) for n in (10_000, 50_000, 100_000, 200_000, 400_000)
)
COUNTERS = ("ptscan", "ecut", "ecut+")

_base_models: dict[float, object] = {}
_base_block = None


def base_block():
    global _base_block
    if _base_block is None:
        _base_block = quest_blocks(FIRST_BLOCK_NAME, 1, seed=2)[0]
    return _base_block


def base_model(minsup: float):
    """The model on the first block, mined once per threshold."""
    if minsup not in _base_models:
        context = ItemsetMiningContext()
        maintainer = BordersMaintainer(minsup, context, counter="ecut")
        _base_models[minsup] = maintainer.build([base_block()])
    return _base_models[minsup]


def run_maintenance(figure: str, counter: str, size: int) -> MaintenanceStats:
    """One maintenance step: fresh context, cloned base model, add block."""
    second_name, minsup = FIGURES[figure]
    second = quest_increment(second_name, size, block_id=2, seed=9)
    context = ItemsetMiningContext()
    maintainer = BordersMaintainer(minsup, context, counter=counter)
    maintainer.register_block(base_block())
    model = base_model(minsup).copy()
    if isinstance(maintainer.counter, ECUTPlusCounter):
        maintainer.materialize_pairs_for_block(base_block(), model)
    before = maintainer.telemetry.snapshot()
    maintainer.add_block(model, second)
    stats = maintainer.last_stats
    # Telemetry parity: the spine's phase spans are the same measured
    # values the per-step MaintenanceStats carries.
    delta = maintainer.telemetry.delta_since(before)
    assert delta.phase_seconds("borders.detection") == stats.detection_seconds
    assert delta.phase_seconds("borders.update") == stats.update_seconds
    assert delta.counter("borders.candidates_counted") == stats.candidates_counted
    return stats


@pytest.mark.parametrize("figure", list(FIGURES))
@pytest.mark.parametrize("counter", COUNTERS)
@pytest.mark.parametrize("size", [SECOND_BLOCK_SIZES[0], SECOND_BLOCK_SIZES[-1]])
def test_maintenance_step(benchmark, figure, counter, size):
    """One (figure, counter, block size) maintenance timing."""
    stats = benchmark.pedantic(
        run_maintenance, args=(figure, counter, size), rounds=1, iterations=1
    )
    assert stats.total_seconds > 0


@pytest.mark.parametrize("figure", list(FIGURES))
def test_figure_table_and_shape(benchmark, figure):
    """Print one figure's full sweep and assert its shape."""

    def sweep():
        results: dict[tuple[str, int], MaintenanceStats] = {}
        for counter in COUNTERS:
            for size in SECOND_BLOCK_SIZES:
                results[(counter, size)] = run_maintenance(figure, counter, size)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    second_name, minsup = FIGURES[figure]

    rows = []
    for size in SECOND_BLOCK_SIZES:
        detection = results[("ecut", size)].detection_seconds
        row = [size, fmt_ms(detection)]
        for counter in COUNTERS:
            stats = results[(counter, size)]
            row.append(fmt_ms(stats.update_seconds))
        row.append(results[("ecut", size)].candidates_counted)
        rows.append(row)
    print_table(
        f"{figure}: {second_name}, minsup={minsup} "
        "(detection + update-phase times, ms)",
        ["block size", "detection", "PT-Scan:update", "ECUT:update",
         "ECUT+:update", "|S|"],
        rows,
    )

    # Shape assertions, on the sizes where new candidates were counted.
    active_sizes = [
        size
        for size in SECOND_BLOCK_SIZES
        if results[("ecut", size)].candidates_counted > 0
    ]
    assert active_sizes, "no drift detected — increase block sizes or scale"
    total_ptscan = sum(
        results[("ptscan", size)].update_seconds for size in active_sizes
    )
    total_ecut = sum(
        results[("ecut", size)].update_seconds for size in active_sizes
    )
    # ECUT's update is cheaper than PT-Scan's over the sweep (the
    # headline claim).  The comparison is aggregate only: individual
    # cells are single wall-clock measurements and occasionally catch a
    # ~2x scheduler/GC spike that says nothing about the algorithms.
    assert total_ecut < total_ptscan * 1.05
    # With ECUT, detection dominates the total maintenance time on the
    # small-block side (paper: "whenever ECUT or ECUT+ were used ...
    # the detection phase dominates").
    small = active_sizes[0]
    ecut_stats = results[("ecut", small)]
    assert ecut_stats.detection_seconds > ecut_stats.update_seconds


WORKER_COUNTS = (1, 2, 4, 8)


def test_maintenance_worker_scaling(benchmark, tmp_path):
    """Ablation: GEMM off-line model fan-out across workers, 1/2/4/8.

    A most-recent window of 4 keeps four overlapping BORDERS models
    alive; each observe realizes the critical one in the parent and
    fans the remaining three out per-model.  The measured quantity is
    the *end-to-end* monitoring run (ingest + detection + all model
    updates) on the mmap backend, drifting the pattern pool halfway
    through (the fig. 4 workload), so the number reflects what a user
    of ``MiningSession(workers=N)`` actually sees — serial ingest and
    critical-path work included.

    The final model must be byte-identical across worker counts.  The
    gate is soft (4 workers must not *lose* to serial on a >= 4 core
    machine) because Amdahl caps the end-to-end win well below the
    counting ablation's; the hard >= 2x gate lives there.
    """
    from repro.core.session import MiningSession
    from repro.core.windows import MostRecentWindow
    from repro.datagen.quest import QuestGenerator, QuestParams
    from repro.parallel.pool import shutdown_workers
    from repro.storage.engine import MmapBackend
    from repro.storage.persist import save_model

    second_name, _paper_minsup = FIGURES["fig4"]
    # The paper's κ = 0.008 explodes the candidate set on the drifted
    # pool; the ablation is about execution scaling, not border size,
    # so a higher threshold keeps one leg at seconds, not minutes.
    minsup = 0.03
    n_blocks = 8
    per_block = max(scaled(800_000), 4_000)
    base_gen = QuestGenerator(
        QuestParams.from_name(FIRST_BLOCK_NAME, scale=SCALE), seed=2
    )
    drift_gen = QuestGenerator(
        QuestParams.from_name(second_name, scale=SCALE), seed=9
    )
    streams = [
        list(
            (base_gen if i < n_blocks // 2 else drift_gen).iter_transactions(
                per_block
            )
        )
        for i in range(n_blocks)
    ]

    def run_leg(workers: int, root: str) -> tuple[float, bytes]:
        session = MiningSession(
            BordersMaintainer(minsup, counter="ecut"),
            span=MostRecentWindow(4),
            backend=MmapBackend(root=root),
            workers=workers,
        )
        start = time.perf_counter()
        for records in streams:
            session.ingest(iter(records))
        elapsed = time.perf_counter() - start
        return elapsed, save_model(session.current_model())

    def sweep():
        times: dict[int, float] = {}
        models: dict[int, bytes] = {}
        for workers in WORKER_COUNTS:
            best = float("inf")
            # Round 0 is the warm-up (executor fork + worker replica
            # caches); round 1 measures the warm engine.
            for round_no in range(2):
                root = str(tmp_path / f"w{workers}-r{round_no}")
                elapsed, blob = run_leg(workers, root)
                models.setdefault(workers, blob)
                assert blob == models[workers]
                if round_no > 0:
                    best = min(best, elapsed)
            times[workers] = best
        return times, models

    try:
        times, models = benchmark.pedantic(sweep, rounds=1, iterations=1)
    finally:
        shutdown_workers()

    assert all(blob == models[1] for blob in models.values()), (
        "worker count changed the maintained model"
    )
    cpu_count = os.cpu_count() or 1
    rows = []
    for workers in WORKER_COUNTS:
        speedup = times[1] / times[workers]
        rows.append([workers, fmt_ms(times[workers]), f"{speedup:.2f}x"])
        emit_json(
            "maintenance_worker_scaling",
            workers=workers,
            seconds=times[workers],
            speedup=speedup,
            n_blocks=n_blocks,
            block_size=per_block,
            window=4,
            cpu_count=cpu_count,
        )
    print_table(
        f"Figures 4-7 addendum: end-to-end monitoring, MRW(4), "
        f"{n_blocks} blocks x {per_block} tx ({cpu_count} cores)",
        ["workers", "ms", "speedup"],
        rows,
    )
    if cpu_count < 4:
        pytest.skip(
            f"worker-speedup gate needs >= 4 cores, machine has {cpu_count}"
        )
    assert times[4] <= times[1] * 1.10, (
        f"4-worker end-to-end run was {times[4] / times[1]:.2f}x serial "
        f"wall-clock on {cpu_count} cores; parallel maintenance must "
        f"not lose"
    )
