"""Figure 9 (table) — patterns discovered in the web-proxy traces.

Paper setup: 21 days of DEC proxy requests, each request a 2-item
transaction {object type, response-size bucket}; frequent itemsets at
1% minimum support; blocks cut at 4/6/8/12/24-hour granularities; the
compact-sequence miner run over each granularity.

The paper's discovered trends (its Figure 9): all working days except
the anomalous 9-9-1996; working-day daytime sub-ranges; 4PM–12PM on
Tuesdays and Thursdays; plus weekend/holiday groupings.  Our synthetic
trace plants the same regime structure, so the miner must recover:

* a weekend-like group containing the Labor-Day Monday,
* a working-days group excluding the anomalous Monday,
* the Tuesday/Thursday-evening pattern at sub-daily granularities.

Run:  pytest benchmarks/bench_fig9_patterns.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from benchmarks.common import print_table
from repro.datagen.proxytrace import ProxyTraceGenerator
from repro.deviation.focus import ItemsetDeviation
from repro.deviation.similarity import BlockSimilarity
from repro.patterns.compact import CompactSequenceMiner

SCALE = 0.03
GRANULARITIES = (24, 12, 8)
MINSUP = 0.02


def mine_patterns(granularity: int):
    """Run the miner over the whole trace at one granularity."""
    blocks = ProxyTraceGenerator(scale=SCALE, seed=4).blocks(granularity)
    similarity = BlockSimilarity(
        ItemsetDeviation(minsup=MINSUP, max_size=2), alpha=0.95, method="chi2"
    )
    miner = CompactSequenceMiner(similarity)
    for block in blocks:
        miner.observe(block)
    return blocks, miner


def describe(blocks, sequence) -> str:
    """Human-readable summary of the calendar slice a sequence covers."""
    members = [blocks[i - 1] for i in sequence.block_ids]
    weekdays = {b.metadata["weekday"] for b in members}
    hours = {b.metadata["start_hour"] for b in members}
    day_kinds = set()
    for b in members:
        if b.metadata["anomaly"]:
            day_kinds.add("anomaly")
        elif b.metadata["holiday"] or b.metadata["weekday"] >= 5:
            day_kinds.add("weekend")
        else:
            day_kinds.add("workday")
    hour_part = (
        f"{min(hours):02d}-{max(hours) + blocks[0].metadata['granularity']:02d}h"
        if len(hours) <= 3
        else "mixed hours"
    )
    return f"{'+'.join(sorted(day_kinds))} {hour_part} (weekdays {sorted(weekdays)})"


@pytest.mark.parametrize("granularity", [24, 12])
def test_fig9_mining_time(benchmark, granularity):
    blocks, miner = benchmark.pedantic(
        mine_patterns, args=(granularity,), rounds=1, iterations=1
    )
    assert miner.t == len(blocks)


def test_fig9_table_and_recovered_trends(benchmark):
    """Print the Figure 9-style table and check the planted regimes."""

    def sweep():
        return {g: mine_patterns(g) for g in GRANULARITIES}

    mined = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for granularity in GRANULARITIES:
        blocks, miner = mined[granularity]
        for sequence in miner.distinct_sequences(min_length=4):
            rows.append(
                [f"{granularity} hr", len(sequence), describe(blocks, sequence)]
            )
    print_table(
        "Figure 9: patterns discovered in the (synthetic) proxy traces",
        ["granularity", "blocks", "trend"],
        rows,
    )

    # --- Recovered-trend checks at the daily granularity -------------
    blocks24, miner24 = mined[24]
    patterns24 = miner24.distinct_sequences(min_length=4)
    anomaly_id = next(
        b.block_id for b in blocks24 if b.metadata["anomaly"]
    )
    weekendish = {
        b.block_id
        for b in blocks24
        if b.metadata["holiday"] or b.metadata["weekday"] >= 5
    }
    workdays = {
        b.block_id
        for b in blocks24
        if b.block_id not in weekendish and b.block_id != anomaly_id
    }
    # A weekend-like pattern that includes the holiday Monday.
    holiday_id = next(b.block_id for b in blocks24 if b.metadata["holiday"])
    assert any(
        set(p.block_ids) <= weekendish and holiday_id in p.block_ids
        for p in patterns24
    ), "weekend+holiday pattern not recovered"
    # A working-day pattern that excludes the anomalous Monday.
    assert any(
        set(p.block_ids) <= workdays and len(p) >= 4 for p in patterns24
    ), "working-day pattern not recovered"
    # The anomalous Monday joins no multi-block pattern.
    assert all(
        anomaly_id not in p.block_ids for p in patterns24
    ), "anomalous Monday leaked into a pattern"

    # --- Tue/Thu evenings at sub-daily granularity --------------------
    blocks12, miner12 = mined[12]
    tuethu_evening = {
        b.block_id
        for b in blocks12
        if b.metadata["weekday"] in (1, 3)
        and b.metadata["start_hour"] >= 12
        and not b.metadata["anomaly"]
    }
    patterns12 = miner12.distinct_sequences(min_length=3)
    assert any(
        len(set(p.block_ids) & tuethu_evening) >= 3
        and len(set(p.block_ids) - tuethu_evening - {
            b.block_id for b in blocks12 if b.metadata["start_hour"] >= 12
        }) == 0
        for p in patterns12
    ), "Tue/Thu evening pattern not recovered"
