"""GEMM ablation — response time vs the direct add+delete route (§3.2.4).

Not a numbered figure in the paper, but the paper's analytic claims
about GEMM deserve measurement:

* With BSS = <1...1>, the direct maintainer ``A^u_M`` must add the new
  block *and* delete the expired one — roughly twice GEMM's
  response-critical work (one ``A_M`` add).
* With the alternating BSS <1010...>, a window slide swaps the entire
  selection; ``A^u_M`` degenerates toward rebuilding from scratch while
  GEMM's response stays a single add.
* GEMM's price is the off-line maintenance of up to ``w - 1`` extra
  models (disk-resident in the paper) — reported here per slide.

Run:  pytest benchmarks/bench_gemm_response.py --benchmark-only -s
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.common import print_table, quest_blocks
from repro.core.bss import WindowRelativeBSS
from repro.core.session import MiningSession
from repro.core.windows import MostRecentWindow
from repro.itemsets.borders import BordersMaintainer, ItemsetMiningContext

DATASET = "2M.20L.1I.4pats.4plen"
MINSUP = 0.01
W = 4
N_BLOCKS = 10


def stream_blocks():
    return quest_blocks(DATASET, N_BLOCKS, seed=6)


def run_gemm(bss=None):
    """Feed the stream through the session engine; collect per-slide
    response times from the GEMM accounting on each report."""
    maintainer = BordersMaintainer(MINSUP, ItemsetMiningContext(), counter="ecut")
    session = MiningSession(maintainer, span=MostRecentWindow(W), bss=bss)
    responses, offline, all_critical = [], [], []
    for block in stream_blocks():
        report = session.observe(block)
        all_critical.append(report.gemm.critical_seconds)
        if session.engine.is_warmed_up:
            responses.append(report.gemm.critical_seconds)
            offline.append(report.gemm.offline_seconds)
    # Telemetry parity: the spine's gemm.critical phase accumulates the
    # same measured values the per-slide reports carry, warm-up included.
    snapshot = session.telemetry.snapshot()
    assert snapshot.phase_calls("gemm.critical") == N_BLOCKS
    assert snapshot.phase_seconds("gemm.critical") == sum(all_critical)
    return responses, offline


def run_direct():
    """A^u_M with BSS <1...1>: add the new block, delete the expired."""
    blocks = stream_blocks()
    maintainer = BordersMaintainer(MINSUP, ItemsetMiningContext(), counter="ecut")
    model = maintainer.build(blocks[:1])
    responses = []
    for t, block in enumerate(blocks[1:], start=2):
        start = time.perf_counter()
        model = maintainer.add_block(model, block)
        expired = t - W
        if expired >= 1:
            model = maintainer.delete_block(model, blocks[expired - 1])
        elapsed = time.perf_counter() - start
        if t > W:
            responses.append(elapsed)
    return responses


def test_gemm_select_all(benchmark):
    responses, _offline = benchmark.pedantic(run_gemm, rounds=1, iterations=1)
    assert responses


def test_direct_add_delete(benchmark):
    responses = benchmark.pedantic(run_direct, rounds=1, iterations=1)
    assert responses


def test_gemm_alternating_bss(benchmark):
    # <0101>: the newest window position carries a 1, so every slide
    # does one critical A_M add — unlike <1010>, whose current model
    # never includes the arriving block and is therefore free.
    bss = WindowRelativeBSS([0, 1, 0, 1])
    responses, _offline = benchmark.pedantic(
        run_gemm, args=(bss,), rounds=1, iterations=1
    )
    assert responses


def test_response_time_table_and_shape(benchmark):
    """Print the comparison and assert GEMM's response advantage."""

    def sweep():
        gemm_responses, gemm_offline = run_gemm()
        direct_responses = run_direct()
        alt_responses, alt_offline = run_gemm(WindowRelativeBSS([0, 1, 0, 1]))
        return gemm_responses, gemm_offline, direct_responses, alt_responses

    gemm_responses, gemm_offline, direct_responses, alt_responses = (
        benchmark.pedantic(sweep, rounds=1, iterations=1)
    )

    rows = [
        ["GEMM <1111>", f"{np.mean(gemm_responses) * 1e3:.1f}",
         f"{np.mean(gemm_offline) * 1e3:.1f}"],
        ["direct add+delete <1111>", f"{np.mean(direct_responses) * 1e3:.1f}",
         "0.0"],
        ["GEMM <0101>", f"{np.mean(alt_responses) * 1e3:.1f}", "n/a"],
    ]
    print_table(
        f"GEMM vs A^u_M response time per slide (w={W}, ms)",
        ["maintainer", "response (mean)", "off-line (mean)"],
        rows,
    )

    # §3.2.4: the direct route "approximately takes twice as long" —
    # assert the direction with headroom for noise.
    assert np.mean(gemm_responses) < np.mean(direct_responses)
