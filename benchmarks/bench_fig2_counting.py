"""Figure 2 — counting time vs number of itemsets |S|.

Paper setup: datasets {2M, 4M}.20L.1I.4pats.4plen at κ = 0.01; a random
set S of negative-border itemsets is counted against the whole dataset
with PT-Scan, ECUT, and ECUT+ (all frequent 2-itemsets materialized),
varying |S| from 5 to 180.

Expected shape (paper): all three counters scale linearly with |S| and
with dataset size; ECUT beats PT-Scan below a crossover in |S|; ECUT+
beats PT-Scan over the whole range and is ~8x faster at small |S|.

Run:  pytest benchmarks/bench_fig2_counting.py --benchmark-only -s
"""

from __future__ import annotations

import os
import random
import time

import pytest

from benchmarks.common import emit_json, fmt_ms, print_table, quest_blocks
from repro.itemsets.apriori import mine_blocks
from repro.itemsets.borders import BordersMaintainer, ItemsetMiningContext
from repro.itemsets.counting import ECUTCounter, ECUTPlusCounter, PTScanCounter
from repro.itemsets.kernels import force_kernel
from repro.itemsets.model import FrequentItemsetModel
from repro.parallel.pool import WorkerPool, shutdown_workers
from repro.storage.engine import MmapBackend
from repro.storage.telemetry import Telemetry

DATASETS = {
    "2M": "2M.20L.1I.4pats.4plen",
    "4M": "4M.20L.1I.4pats.4plen",
}
MINSUP = 0.01
SIZES = (5, 45, 90, 180)
N_BLOCKS = 4

_setup_cache: dict[str, tuple] = {}


def fig2_setup(dataset_key: str):
    """Context + model + sampled border itemsets for one dataset."""
    if dataset_key in _setup_cache:
        return _setup_cache[dataset_key]
    blocks = quest_blocks(DATASETS[dataset_key], N_BLOCKS, seed=2)
    context = ItemsetMiningContext()
    maintainer = BordersMaintainer(MINSUP, context, counter="ecut+")
    model = maintainer.build(blocks)

    # Stratify the sample toward larger border itemsets: the update
    # phase's real counting targets are fresh candidates of size >= 3
    # (2-itemsets are almost all already tracked), and they are where
    # the materialized pair lists pay off.
    rng = random.Random(42)
    big = sorted(x for x in model.border if len(x) >= 3)
    pairs = sorted(x for x in model.border if len(x) == 2)
    want = max(SIZES)
    sample = rng.sample(big, min(want * 3 // 4, len(big)))
    sample += rng.sample(pairs, min(want - len(sample), len(pairs)))
    rng.shuffle(sample)
    counters = {
        "PT-Scan": PTScanCounter(context.block_store),
        "ECUT": ECUTCounter(context.tidlists),
        "ECUT+": ECUTPlusCounter(context.tidlists, context.pairs),
    }
    block_ids = [b.block_id for b in blocks]
    _setup_cache[dataset_key] = (context, model, sample, counters, block_ids)
    return _setup_cache[dataset_key]


@pytest.mark.parametrize("dataset", list(DATASETS))
@pytest.mark.parametrize("counter_name", ["PT-Scan", "ECUT", "ECUT+"])
@pytest.mark.parametrize("size", SIZES)
def test_fig2_counting(benchmark, dataset, counter_name, size):
    """One (dataset, counter, |S|) cell of Figure 2."""
    _context, _model, sample, counters, block_ids = fig2_setup(dataset)
    itemsets = sample[:size]
    counter = counters[counter_name]
    result = benchmark.pedantic(
        counter.count, args=(itemsets, block_ids), rounds=3, iterations=1
    )
    assert len(result) == len(itemsets)


def test_fig2_table_and_shape(benchmark):
    """Print the full Figure 2 series and assert the paper's shape."""

    def read_bytes(context, name):
        if name == "PT-Scan":
            return context.block_store.stats.bytes_read
        return (
            context.tidlists.stats.bytes_read + context.pairs.stats.bytes_read
        )

    def read_hits(context):
        return (
            context.block_store.stats.cache_hits
            + context.tidlists.stats.cache_hits
            + context.pairs.stats.cache_hits
        )

    def sweep():
        rows = []
        times: dict[tuple[str, str, int], float] = {}
        fetched: dict[tuple[str, str, int], int] = {}
        agreement: dict[tuple[str, int], dict] = {}
        for dataset in DATASETS:
            ctx, _model, sample, counters, block_ids = fig2_setup(dataset)
            # Telemetry parity: the spine sees the same live registry
            # the direct store counters above read from.
            spine = Telemetry()
            spine.attach_io("itemsets", ctx.registry)
            for size in SIZES:
                itemsets = sample[:size]
                row = [dataset, size]
                for name, counter in counters.items():
                    before = read_bytes(ctx, name)
                    hits_before = read_hits(ctx)
                    spine_before = spine.snapshot()
                    start = time.perf_counter()
                    counts = counter.count(itemsets, block_ids)
                    elapsed = time.perf_counter() - start
                    times[(dataset, name, size)] = elapsed
                    fetched[(dataset, name, size)] = read_bytes(ctx, name) - before
                    spine_io = spine.delta_since(spine_before).io_totals()
                    assert spine_io.bytes_read == fetched[(dataset, name, size)]
                    assert spine_io.cache_hits == read_hits(ctx) - hits_before
                    row.append(fmt_ms(elapsed))
                    key = (dataset, size)
                    agreement.setdefault(key, counts)
                    assert counts == agreement[key], (
                        f"counter disagreement for {name} on {key}"
                    )
                row.extend(
                    f"{fetched[(dataset, name, size)] / 1024:.0f}"
                    for name in counters
                )
                rows.append(row)
        print_table(
            "Figure 2: counting time (ms) and data fetched (KiB) vs |S|",
            ["dataset", "|S|",
             "PT-Scan ms", "ECUT ms", "ECUT+ ms",
             "PT-Scan KiB", "ECUT KiB", "ECUT+ KiB"],
            rows,
        )
        return times, fetched

    times, fetched = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for (dataset, name, size), elapsed in times.items():
        emit_json(
            "fig2_counting",
            dataset=dataset,
            counter=name,
            n_itemsets=size,
            seconds=elapsed,
            bytes_fetched=fetched[(dataset, name, size)],
        )

    for dataset in DATASETS:
        # ECUT beats PT-Scan for small |S| (paper: crossover ~75).
        assert times[(dataset, "ECUT", 5)] < times[(dataset, "PT-Scan", 5)]
        for size in SIZES:
            # The I/O argument: TID-lists fetch a fraction of a scan...
            assert fetched[(dataset, "ECUT", size)] < fetched[
                (dataset, "PT-Scan", size)
            ]
            # ...and materialized pairs fetch no more than item lists.
            assert fetched[(dataset, "ECUT+", size)] <= fetched[
                (dataset, "ECUT", size)
            ]
        # Roughly linear growth in |S| for the TID-list counters: going
        # from 45 to 180 itemsets must not blow up super-linearly.
        assert times[(dataset, "ECUT", 180)] <= times[(dataset, "ECUT", 45)] * 8
    # Larger dataset costs more for a full scan.
    assert times[("4M", "PT-Scan", 90)] > times[("2M", "PT-Scan", 90)] * 1.2


def _tidlist_bytes(context, name):
    """Bytes charged to the TID-list stores one counter reads from."""
    total = context.tidlists.stats.bytes_read
    if name == "ECUT+":
        total += context.pairs.stats.bytes_read
    return total


def _best_of(fn, rounds=5):
    """Best-of-N wall clock for one call; returns (seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_fig2_batched_vs_unbatched(benchmark):
    """The tentpole claim: count_batch beats per-itemset count >= 2x.

    Same fig. 2 workload, ECUT and ECUT+ only (PT-Scan is inherently
    batched).  Three invariants per cell: identical supports, strictly
    fewer bytes charged, and at |S| = 180 a >= 2x wall-clock speedup.
    """
    sizes = (45, 180)

    def sweep():
        rows = []
        speedups: dict[tuple[str, str, int], float] = {}
        for dataset in DATASETS:
            ctx, _model, sample, counters, block_ids = fig2_setup(dataset)
            for size in sizes:
                itemsets = sample[:size]
                row = [dataset, size]
                for name in ("ECUT", "ECUT+"):
                    counter = counters[name]
                    before = _tidlist_bytes(ctx, name)
                    t_unbatched, expected = _best_of(
                        lambda: counter.count(itemsets, block_ids)
                    )
                    unbatched_bytes = (
                        _tidlist_bytes(ctx, name) - before
                    ) // 5
                    before = _tidlist_bytes(ctx, name)
                    t_batched, got = _best_of(
                        lambda: counter.count_batch(itemsets, block_ids)
                    )
                    batched_bytes = (_tidlist_bytes(ctx, name) - before) // 5
                    assert got == expected, (
                        f"count_batch disagrees with count for {name} "
                        f"on ({dataset}, |S|={size})"
                    )
                    assert batched_bytes < unbatched_bytes, (
                        f"batched {name} charged {batched_bytes} bytes, "
                        f"per-itemset charged {unbatched_bytes}"
                    )
                    speedup = t_unbatched / t_batched
                    speedups[(dataset, name, size)] = speedup
                    row.extend(
                        [fmt_ms(t_unbatched), fmt_ms(t_batched),
                         f"{speedup:.2f}x",
                         f"{(unbatched_bytes - batched_bytes) / 1024:.0f}"]
                    )
                    emit_json(
                        "fig2_batched_vs_unbatched",
                        dataset=dataset,
                        counter=name,
                        n_itemsets=size,
                        unbatched_seconds=t_unbatched,
                        batched_seconds=t_batched,
                        speedup=speedup,
                        unbatched_bytes=unbatched_bytes,
                        batched_bytes=batched_bytes,
                    )
                rows.append(row)
        print_table(
            "Figure 2 addendum: batched vs per-itemset counting",
            ["dataset", "|S|",
             "ECUT ms", "batch ms", "speedup", "saved KiB",
             "ECUT+ ms", "batch ms", "speedup", "saved KiB"],
            rows,
        )
        return speedups

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for dataset in DATASETS:
        for name in ("ECUT", "ECUT+"):
            # Batching never loses, and wins big once S amortizes the
            # shared prefixes (measured ~4.5x at |S| = 180).
            assert speedups[(dataset, name, 45)] > 1.0
            assert speedups[(dataset, name, 180)] >= 2.0, (
                f"batched {name} only {speedups[(dataset, name, 180)]:.2f}x "
                f"faster on ({dataset}, |S|=180); the tentpole claims >= 2x"
            )


def test_fig2_kernel_ablation(benchmark):
    """Ablation: pin the intersection kernel under the per-itemset path.

    ``force_kernel`` overrides adaptive dispatch so the gallop and merge
    kernels run on every intersection regardless of size ratio.  Counts
    must be identical under every kernel; timing is reported (and
    emitted as JSON) but only softly asserted — adaptive must not lose
    badly to either pinned kernel.
    """
    size = 90

    def sweep():
        rows = []
        times: dict[tuple[str, str], float] = {}
        for dataset in DATASETS:
            _ctx, _model, sample, counters, block_ids = fig2_setup(dataset)
            itemsets = sample[:size]
            counter = counters["ECUT"]
            baseline = None
            row = [dataset, size]
            for kernel in ("adaptive", "gallop", "merge"):
                with force_kernel(None if kernel == "adaptive" else kernel):
                    elapsed, counts = _best_of(
                        lambda: counter.count(itemsets, block_ids)
                    )
                if baseline is None:
                    baseline = counts
                assert counts == baseline, (
                    f"kernel {kernel} changed supports on {dataset}"
                )
                times[(dataset, kernel)] = elapsed
                row.append(fmt_ms(elapsed))
                emit_json(
                    "fig2_kernel_ablation",
                    dataset=dataset,
                    kernel=kernel,
                    n_itemsets=size,
                    seconds=elapsed,
                )
            rows.append(row)
        print_table(
            "Figure 2 addendum: ECUT kernel ablation (|S| = 90)",
            ["dataset", "|S|", "adaptive ms", "gallop ms", "merge ms"],
            rows,
        )
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for dataset in DATASETS:
        pinned_best = min(
            times[(dataset, "gallop")], times[(dataset, "merge")]
        )
        # Soft: the dispatcher should be near the best pinned kernel,
        # never dramatically worse (2x guards against dispatch bugs
        # while tolerating laptop-scale timing noise).
        assert times[(dataset, "adaptive")] <= pinned_best * 2.0


WORKER_COUNTS = (1, 2, 4, 8)


def test_fig2_worker_scaling(benchmark, tmp_path):
    """Ablation: sharded ECUT counting over a worker pool, 1/2/4/8.

    Blocks live on the mmap backend so shard payloads are zero-copy —
    workers reopen the on-disk columns by path and only the count
    vectors cross the pipe.  Supports must equal the serial run exactly
    (TID-list additivity); wall clock is emitted per worker count with
    the machine's honest ``cpu_count``, and the hard >= 2x speedup gate
    applies only where 4 workers can actually run in parallel (the CI
    runner has 4 vCPUs; a 1-core laptop emits rows and skips).

    The workload is deliberately fatter than the fig. 2 cells — 8
    blocks of >= 20K transactions and ~1200 counting targets — so each
    shard carries tens of milliseconds of intersection work and the
    measurement exercises the engine, not executor dispatch.
    """
    from benchmarks.common import SCALE, scaled
    from repro.datagen.quest import QuestGenerator, QuestParams

    n_blocks = 8
    per_block = max(scaled(4_000_000), 20_000)
    params = QuestParams.from_name(DATASETS["4M"], scale=SCALE)
    generator = QuestGenerator(params, seed=2)
    backend = MmapBackend(root=str(tmp_path))
    try:
        blocks = [
            backend.ingest(i + 1, generator.iter_transactions(per_block))
            for i in range(n_blocks)
        ]
        context = ItemsetMiningContext()
        maintainer = BordersMaintainer(MINSUP, context, counter="ecut")
        for block in blocks:
            maintainer.register_block(block)
        rng = random.Random(7)
        itemsets = sorted(
            {tuple(sorted(rng.sample(range(40), 3))) for _ in range(1300)}
        )
        block_ids = [block.block_id for block in blocks]
        counter = maintainer.counter
        assert isinstance(counter, ECUTCounter)

        from repro.parallel.shards import block_ref, count_shard

        warm_refs = tuple(
            block_ref(context.tidlists.source_block(block_id))
            for block_id in block_ids
        )

        def sweep():
            times: dict[int, float] = {}
            baseline = None
            for workers in WORKER_COUNTS:
                pool = WorkerPool(workers)
                counter.bind_pool(pool)
                if workers > 1:
                    # Deterministic warm-up: every executor worker
                    # rebuilds every block's TID-list store once.  All
                    # workers are idle when these simultaneous slow
                    # tasks land, so they spread one per worker — after
                    # this, measured rounds never pay a cold store
                    # build regardless of which worker the scheduler
                    # hands which shard.
                    pool.run(
                        count_shard, [((itemsets[0],), warm_refs)] * workers
                    )
                counter.count_batch(itemsets, block_ids)
                elapsed, counts = _best_of(
                    lambda: counter.count_batch(itemsets, block_ids), rounds=3
                )
                if baseline is None:
                    baseline = counts
                assert counts == baseline, (
                    f"sharded counting at {workers} workers changed supports"
                )
                times[workers] = elapsed
            counter.bind_pool(None)
            return times

        try:
            times = benchmark.pedantic(sweep, rounds=1, iterations=1)
        finally:
            counter.bind_pool(None)
            shutdown_workers()
    finally:
        backend.close()

    cpu_count = os.cpu_count() or 1
    rows = []
    for workers in WORKER_COUNTS:
        speedup = times[1] / times[workers]
        rows.append([workers, fmt_ms(times[workers]), f"{speedup:.2f}x"])
        emit_json(
            "fig2_worker_scaling",
            workers=workers,
            seconds=times[workers],
            speedup=speedup,
            n_itemsets=len(itemsets),
            n_blocks=n_blocks,
            cpu_count=cpu_count,
        )
    print_table(
        f"Figure 2 addendum: sharded ECUT counting "
        f"(|S| = {len(itemsets)}, {n_blocks} mmap blocks, "
        f"{cpu_count} cores)",
        ["workers", "ms", "speedup"],
        rows,
    )
    if cpu_count < 4:
        pytest.skip(
            f"worker-speedup gate needs >= 4 cores, machine has {cpu_count}"
        )
    assert times[1] / times[4] >= 2.0, (
        f"4-worker sharded counting only "
        f"{times[1] / times[4]:.2f}x faster than serial on "
        f"{cpu_count} cores; the parallel engine claims >= 2x"
    )
