"""Change-aware maintenance scheduling — deferred vs eager maintenance.

DEMON's maintenance cost is dominated by the ``A_M`` invocations each
arriving block triggers.  The :class:`DeviationScheduler` defers that
work while a cheap sampled FOCUS estimate says the data is stationary,
then catches up in one batched slide that skips the retired
intermediate models an eager run would have built.  This benchmark
streams a drifting workload (a stationary prefix, a distribution
shift, a stationary tail) through both policies and gates three
claims:

* **identity** — the flushed scheduled model is byte-identical to the
  eager model (deferral changes *when*, never *what*);
* **savings** — the scheduled run spends at most half the eager run's
  ``session.maintain`` seconds (the batched catch-up must skip real
  work, not just move it);
* **cheap estimates** — one per-block drift estimate costs under 10%
  of one eager per-block maintenance (the always-on ingest tax stays
  negligible).

Run:  pytest benchmarks/bench_scheduler.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from benchmarks.common import emit_json, fmt_ms, print_table, scaled
from repro.core.session import MiningSession
from repro.core.windows import MostRecentWindow
from repro.datagen.quest import QuestGenerator, QuestParams
from repro.itemsets.borders import BordersMaintainer
from repro.scheduling import DeviationScheduler
from repro.storage.persist import save_model

STATIONARY = "2M.20L.1I.4pats.4plen"
DRIFTED = "2M.20L.1I.8pats.4plen"
N_BLOCKS = 16
DRIFT_AT = 9  # blocks 1..8 stationary, 9..16 from the shifted mix
PER_BLOCK = scaled(200_000)
WINDOW = 4
MINSUP = 0.02
THRESHOLD = 0.95
MAX_PENDING = 8


def drifting_stream():
    """16 blocks: a stationary segment, then a shifted pattern mix.

    Each segment redraws from one fixed configuration and seed, so the
    drift estimator sees a flat signal inside a segment and a sharp
    break at the boundary — the regime the deferral policy targets.
    """
    blocks = []
    for block_id in range(1, N_BLOCKS + 1):
        name, seed = (
            (STATIONARY, 2) if block_id < DRIFT_AT else (DRIFTED, 9)
        )
        params = QuestParams.from_name(name)
        generator = QuestGenerator(params, seed=seed)
        blocks.append(generator.block(block_id, count=PER_BLOCK))
    return blocks


def run_session(scheduler, blocks):
    session = MiningSession(
        BordersMaintainer(MINSUP, counter="ecut"),
        span=MostRecentWindow(WINDOW),
        scheduler=scheduler,
    )
    for block in blocks:
        session.observe(block)
    session.flush()
    return session


def test_deferred_maintenance_savings(benchmark):
    """The headline gate: >= 50% of eager maintenance seconds saved,
    byte-identical flushed model, estimates under 10% of a maintain."""
    blocks = drifting_stream()

    def legs():
        eager = run_session("eager", blocks)
        deviation = run_session(
            DeviationScheduler(threshold=THRESHOLD, max_pending=MAX_PENDING),
            blocks,
        )
        return eager, deviation

    eager, deviation = benchmark.pedantic(legs, rounds=1, iterations=1)

    eager_snap = eager.telemetry.snapshot()
    dev_snap = deviation.telemetry.snapshot()
    eager_maintain = eager_snap.phase_seconds("session.maintain")
    dev_maintain = dev_snap.phase_seconds("session.maintain")
    estimate_seconds = dev_snap.phase_seconds("scheduler.estimate")
    estimate_calls = dev_snap.phase_calls("scheduler.estimate")
    saved_estimate = dev_snap.phase_seconds("scheduler.saved_maintenance")
    deferred = dev_snap.counter("scheduler.deferred")
    triggered = dev_snap.counter("scheduler.triggered")

    def invocations(snap):
        return snap.counter("gemm.invocations.critical") + snap.counter(
            "gemm.invocations.offline"
        )

    emit_json(
        "scheduler",
        dataset=f"{STATIONARY}->{DRIFTED}",
        blocks=N_BLOCKS,
        per_block=PER_BLOCK,
        window=WINDOW,
        threshold=THRESHOLD,
        max_pending=MAX_PENDING,
        eager_maintain_seconds=eager_maintain,
        deviation_maintain_seconds=dev_maintain,
        estimate_seconds=estimate_seconds,
        estimate_calls=estimate_calls,
        saved_maintenance_seconds=saved_estimate,
        deferred=deferred,
        triggered=triggered,
        eager_invocations=invocations(eager_snap),
        deviation_invocations=invocations(dev_snap),
    )
    print_table(
        f"Deferred maintenance on a drifting stream "
        f"({N_BLOCKS} blocks x {PER_BLOCK}, drift at {DRIFT_AT})",
        ["scheduler", "maintain (ms)", "A_M calls", "deferred", "estimate (ms)"],
        [
            ["eager", fmt_ms(eager_maintain), invocations(eager_snap), 0, "-"],
            [
                "deviation",
                fmt_ms(dev_maintain),
                invocations(dev_snap),
                deferred,
                fmt_ms(estimate_seconds),
            ],
        ],
    )

    # Identity: deferral must not change what is computed.
    assert save_model(deviation.current_model()) == save_model(
        eager.current_model()
    )
    assert deviation.current_selection() == eager.current_selection()
    # The stream must actually exercise the deferral machinery.
    assert deferred > 0 and triggered > 0

    # Work savings: the batched catch-up skips retired intermediates,
    # so the A_M invocation count — not just wall time — must drop.
    assert invocations(dev_snap) < invocations(eager_snap)
    assert dev_maintain <= 0.5 * eager_maintain, (
        f"deviation scheduling spent {dev_maintain:.3f}s maintaining vs "
        f"{eager_maintain:.3f}s eager — less than 50% saved"
    )

    # The always-on ingest tax: one estimate must cost well under one
    # eager per-block maintenance.
    per_estimate = estimate_seconds / max(estimate_calls, 1)
    per_maintain = eager_maintain / N_BLOCKS
    assert per_estimate < 0.10 * per_maintain, (
        f"one drift estimate costs {per_estimate * 1e3:.2f}ms vs "
        f"{per_maintain * 1e3:.2f}ms per eager maintenance — over the "
        f"10% ingest-tax budget"
    )


def test_staleness_bound_on_a_stationary_stream(benchmark):
    """A never-drifting stream defers in max_pending-sized batches and
    still flushes to the eager bytes."""
    params = QuestParams.from_name(STATIONARY)
    blocks = [
        QuestGenerator(params, seed=2).block(block_id, count=PER_BLOCK)
        for block_id in range(1, N_BLOCKS + 1)
    ]
    max_pending = 4

    def legs():
        eager = run_session("eager", blocks)
        deviation = run_session(
            DeviationScheduler(threshold=THRESHOLD, max_pending=max_pending),
            blocks,
        )
        return eager, deviation

    eager, deviation = benchmark.pedantic(legs, rounds=1, iterations=1)
    snap = deviation.telemetry.snapshot()
    emit_json(
        "scheduler_stationary",
        dataset=STATIONARY,
        blocks=N_BLOCKS,
        per_block=PER_BLOCK,
        max_pending=max_pending,
        staleness_flushes=snap.counter("scheduler.staleness_flushes"),
        deferred=snap.counter("scheduler.deferred"),
        eager_maintain_seconds=eager.telemetry.snapshot().phase_seconds(
            "session.maintain"
        ),
        deviation_maintain_seconds=snap.phase_seconds("session.maintain"),
    )
    assert save_model(deviation.current_model()) == save_model(
        eager.current_model()
    )
    # Only the staleness bound can trigger here — the data never drifts.
    assert snap.counter("scheduler.staleness_flushes") > 0
