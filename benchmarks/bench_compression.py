"""Tiered-storage benchmark — compressed cold blocks vs dense mmap.

The tiered backend's bargain is that expired-from-window blocks keep
their exact records and their exact logical byte charges while holding
a fraction of the dense footprint.  This benchmark measures both sides
of that bargain against the plain mmap backend on the bench_ingest
workloads:

* **bytes on disk** — a transaction stream ingested into both backends,
  every block demoted on the tiered side (the MRW-expiry path); the
  cold form must hold at least 2x fewer bytes;
* **peak RSS guard** — a subprocess per backend ingests and scans a
  multi-block dense-point stream (the clustering workload's shape); the
  tiered backend must peak at least 2x below mmap, because scanning
  cold blocks decodes chunk-at-a-time instead of paging in every dense
  column;
* **scan + count throughput** — the maintenance pipeline (one full
  chunked pass plus an ECUT candidate-batch count) over cold blocks and
  compressed TID-lists must produce byte-identical counts and stay
  within 20% of the same pipeline over the hot (dense) forms.

All gates compare two runs on this machine, so they hold on any
hardware; the emitted JSON records cpu count and scale so baselines
are never compared across environments.

Run:  pytest benchmarks/bench_compression.py --benchmark-only -s
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

import pytest

from benchmarks.common import SCALE, emit_json, fmt_ms, print_table, scaled
from repro.datagen.quest import QuestGenerator, QuestParams
from repro.storage.engine import MmapBackend, TieredBackend

DATASET = "2M.20L.1I.4pats.4plen"
N_TRANSACTIONS = scaled(2_000_000)
N_BLOCKS = 8

#: The RSS guard's stream is fixed-size (not SCALE-scaled): the gap
#: between dense resident pages and chunk-at-a-time decoding only shows
#: once the dataset dwarfs interpreter noise.
RSS_ROWS = 80_000
RSS_WIDTH = 8
RSS_BLOCKS = 16

#: The throughput gate is fixed-size too: per-chunk decode has a fixed
#: numpy overhead that dominates at toy scales, so the scan+count ratio
#: is only meaningful once chunks are full.
THROUGHPUT_ROWS = 100_000


def transaction_blocks():
    params = QuestParams.from_name(DATASET)
    generator = QuestGenerator(params, seed=11)
    per_block = max(N_TRANSACTIONS // N_BLOCKS, 10)
    return [
        list(generator.iter_transactions(per_block)) for _ in range(N_BLOCKS)
    ]


def disk_bytes(root: str) -> int:
    total = 0
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            total += os.path.getsize(os.path.join(dirpath, name))
    return total


def scan(blocks) -> int:
    seen = 0
    for block in blocks:
        for chunk in block.iter_chunks():
            seen += len(chunk)
    return seen


# ----------------------------------------------------------------------
# Bytes on disk
# ----------------------------------------------------------------------


def test_cold_blocks_halve_disk_bytes(benchmark, tmp_path):
    """Demoted transaction blocks must hold >= 2x fewer bytes than mmap."""
    streams = transaction_blocks()

    def ingest_both():
        mmap_backend = MmapBackend(root=str(tmp_path / "mmap"))
        tiered = TieredBackend(root=str(tmp_path / "tiered"))
        blocks = []
        for block_id, records in enumerate(streams, start=1):
            mmap_backend.ingest(block_id, iter(records))
            blocks.append(tiered.ingest(block_id, iter(records)))
            tiered.demote_block(block_id)
        dense = disk_bytes(mmap_backend.root)
        cold = disk_bytes(tiered.root)
        return blocks, dense, cold

    _blocks, dense, cold = benchmark.pedantic(ingest_both, rounds=1, iterations=1)
    emit_json(
        "compression_disk",
        dataset=DATASET,
        n_blocks=N_BLOCKS,
        records=sum(len(s) for s in streams),
        mmap_disk_bytes=dense,
        tiered_disk_bytes=cold,
        ratio=dense / cold,
    )
    print_table(
        f"Bytes on disk, {DATASET} ({N_TRANSACTIONS} transactions, "
        f"{N_BLOCKS} blocks, all demoted)",
        ["backend", "disk (KB)", "ratio"],
        [
            ["mmap (dense)", f"{dense / 1024:.1f}", "1.00x"],
            ["tiered (cold)", f"{cold / 1024:.1f}", f"{dense / cold:.2f}x"],
        ],
    )
    assert cold * 2 <= dense, (
        f"cold tier holds {cold} bytes vs {dense} dense — less than 2x smaller"
    )


# ----------------------------------------------------------------------
# Peak-RSS guard
# ----------------------------------------------------------------------

_RSS_CHILD = """
import resource, sys, tempfile
from repro.storage.engine import MmapBackend, TieredBackend

kind, rows, width, n_blocks = (
    sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4])
)

CENTERS = [float(c) for c in (3.0, -11.0, 42.0, 0.25, 17.5)]

def points(block_id):
    for i in range(rows):
        base = CENTERS[(block_id + i) % len(CENTERS)]
        yield tuple(base + ((i + j) % 40) * 0.01 for j in range(width))

root = tempfile.mkdtemp()
if kind == "mmap":
    backend = MmapBackend(root=root, chunk_size=4096)
else:
    backend = TieredBackend(root=root, chunk_size=4096)
blocks = []
for block_id in range(1, n_blocks + 1):
    blocks.append(backend.ingest(block_id, points(block_id)))
    if kind == "tiered":
        backend.demote_block(block_id)
seen = 0
for block in blocks:
    for chunk in block.iter_chunks():
        seen += len(chunk)
assert seen == rows * n_blocks
import os
total = 0
for dirpath, _dirs, files in os.walk(root):
    for name in files:
        total += os.path.getsize(os.path.join(dirpath, name))
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss, total)
"""


def child_rss_and_disk(kind: str) -> tuple[int, int]:
    """Ingest + scan the point stream in a child; peak RSS KB and disk bytes."""
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    parts = [os.path.join(repo_root, "src")]
    if env.get("PYTHONPATH"):
        parts.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    out = subprocess.run(
        [
            sys.executable,
            "-c",
            _RSS_CHILD,
            kind,
            str(RSS_ROWS),
            str(RSS_WIDTH),
            str(RSS_BLOCKS),
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    rss_kb, total = out.stdout.split()
    return int(rss_kb), int(total)


def test_tiered_peaks_at_half_of_mmap(benchmark):
    """The bench guard: cold scans must not page in the dense layout."""

    def measure():
        return child_rss_and_disk("mmap"), child_rss_and_disk("tiered")

    (mmap_kb, mmap_disk), (tiered_kb, tiered_disk) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    emit_json(
        "compression_rss",
        rows=RSS_ROWS,
        width=RSS_WIDTH,
        n_blocks=RSS_BLOCKS,
        mmap_rss_kb=mmap_kb,
        tiered_rss_kb=tiered_kb,
        mmap_disk_bytes=mmap_disk,
        tiered_disk_bytes=tiered_disk,
    )
    print_table(
        f"Peak RSS, {RSS_BLOCKS} dense blocks of {RSS_ROWS}x{RSS_WIDTH} floats",
        ["backend", "peak RSS (MB)", "disk (MB)"],
        [
            ["mmap (dense)", f"{mmap_kb / 1024:.1f}", f"{mmap_disk / 2**20:.1f}"],
            [
                "tiered (cold)",
                f"{tiered_kb / 1024:.1f}",
                f"{tiered_disk / 2**20:.1f}",
            ],
        ],
    )
    assert tiered_kb * 2 <= mmap_kb, (
        f"tiered backend peaked at {tiered_kb} KB vs {mmap_kb} KB mmap — "
        "less than 2x lower"
    )
    assert tiered_disk * 2 <= mmap_disk, (
        f"cold tier holds {tiered_disk} bytes vs {mmap_disk} dense on disk"
    )


# ----------------------------------------------------------------------
# Scan + count throughput
# ----------------------------------------------------------------------


def test_scan_and_count_within_20pct_of_dense(benchmark, tmp_path):
    """The maintenance pipeline on cold blocks vs the same run on hot.

    One full chunked pass plus an ECUT candidate-batch count (singles,
    pairs, and triples of the most frequent items — the shape of a
    border-maintenance batch).  Counts must be byte-identical across
    placements; the pipeline must stay within the 20% budget.  The
    per-tier scan and count times are also reported individually so a
    regression in either half shows up in the table even while the
    combined gate holds.
    """
    from collections import Counter
    from itertools import combinations

    from repro.itemsets.counting import ECUTCounter
    from repro.itemsets.tidlist import TidListStore

    params = QuestParams.from_name(DATASET)
    generator = QuestGenerator(params, seed=11)
    per_block = THROUGHPUT_ROWS // N_BLOCKS
    streams = [
        list(generator.iter_transactions(per_block)) for _ in range(N_BLOCKS)
    ]
    backend = TieredBackend(root=str(tmp_path))
    store = TidListStore()
    blocks = []
    block_ids = []
    for block_id, records in enumerate(streams, start=1):
        block = backend.ingest(block_id, iter(records))
        store.materialize_block(block)
        blocks.append(block)
        block_ids.append(block_id)
    records_total = sum(len(s) for s in streams)

    frequency = Counter(
        item for records in streams for tx in records for item in tx
    )
    top = sorted(item for item, _count in frequency.most_common(25))
    targets = (
        [(item,) for item in top]
        + list(combinations(top, 2))
        + list(combinations(top[:18], 3))
    )
    counter = ECUTCounter(store)

    def timed_scan():
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            seen = scan(blocks)
            best = min(best, time.perf_counter() - t0)
            assert seen == records_total
        return best

    def timed_counts():
        best, counts = float("inf"), None
        for _ in range(3):
            t0 = time.perf_counter()
            counts = counter.count_batch(targets, block_ids)
            best = min(best, time.perf_counter() - t0)
        return best, counts

    def measure():
        hot_scan = timed_scan()
        dense_s, dense_counts = timed_counts()
        for block in blocks:
            backend.demote_block(block.block_id)
            block.data._promoter = None  # timing scans must stay cold
        for block_id in block_ids:
            store.compress_block(block_id)
        cold_scan = timed_scan()
        packed_s, packed_counts = timed_counts()
        return hot_scan, dense_s, cold_scan, packed_s, dense_counts, packed_counts

    hot_scan, dense_s, cold_scan, packed_s, dense_counts, packed_counts = (
        benchmark.pedantic(measure, rounds=1, iterations=1)
    )
    assert packed_counts == dense_counts
    hot_total = hot_scan + dense_s
    cold_total = cold_scan + packed_s
    emit_json(
        "compression_throughput",
        dataset=DATASET,
        records=records_total,
        n_itemsets=len(targets),
        hot_scan_seconds=hot_scan,
        cold_scan_seconds=cold_scan,
        dense_count_seconds=dense_s,
        compressed_count_seconds=packed_s,
        scan_slowdown=cold_scan / hot_scan,
        count_slowdown=packed_s / dense_s,
        pipeline_slowdown=cold_total / hot_total,
    )
    print_table(
        f"Scan + count, {DATASET} ({records_total} transactions, "
        f"{len(targets)} itemsets)",
        ["tier", "scan (ms)", "count (ms)", "pipeline", "vs dense"],
        [
            [
                "hot (dense)",
                fmt_ms(hot_scan),
                fmt_ms(dense_s),
                fmt_ms(hot_total),
                "1.00x",
            ],
            [
                "cold (packed)",
                fmt_ms(cold_scan),
                fmt_ms(packed_s),
                fmt_ms(cold_total),
                f"{cold_total / hot_total:.2f}x",
            ],
        ],
    )
    assert cold_total <= 1.2 * hot_total, (
        f"cold scan+count took {cold_total:.4f}s vs {hot_total:.4f}s dense — "
        "over the 20% budget"
    )


def test_environment_row(benchmark):
    """Record the run's environment so baselines stay comparable."""

    def row():
        return os.cpu_count() or 1

    cpus = benchmark.pedantic(row, rounds=1, iterations=1)
    emit_json(
        "compression_environment",
        cpu_count=cpus,
        scale=SCALE,
        python=".".join(str(v) for v in sys.version_info[:3]),
        rss_rows=RSS_ROWS,
        rss_blocks=RSS_BLOCKS,
        throughput_rows=THROUGHPUT_ROWS,
    )
