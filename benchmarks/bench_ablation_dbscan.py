"""Ablation — incremental DBSCAN's insertion/deletion cost asymmetry.

§3.2.4 justifies GEMM over the direct add+delete route partly because
"the cost incurred by incremental DBSCAN to maintain the set of
clusters when a tuple is deleted is higher than that when a tuple is
inserted" (Ester et al.).  This benchmark measures both directions on
the same clustered point stream and contrasts a GEMM-windowed DBSCAN
(insert-only) with a direct add+delete window.

Run:  pytest benchmarks/bench_ablation_dbscan.py --benchmark-only -s
"""

from __future__ import annotations

import random
import time

import numpy as np
import pytest

from benchmarks.common import print_table
from repro.clustering.dbscan import IncrementalDBSCAN, IncrementalDBSCANMaintainer
from repro.core.blocks import make_block
from repro.core.gemm import GEMM

EPS = 1.5
MIN_PTS = 4
N_POINTS = 600


def clustered_points(n, seed=0):
    rng = random.Random(seed)
    centers = [(0.0, 0.0), (8.0, 0.0), (0.0, 8.0), (8.0, 8.0)]
    points = []
    for _ in range(n):
        cx, cy = centers[rng.randrange(4)]
        points.append((cx + rng.gauss(0, 1.0), cy + rng.gauss(0, 1.0)))
    return points


def measure_costs():
    """Per-operation times and query counts for inserts then deletes."""
    points = clustered_points(N_POINTS, seed=1)
    clustering = IncrementalDBSCAN(eps=EPS, min_pts=MIN_PTS, dim=2)
    insert_times, insert_queries, ids = [], [], []
    for point in points:
        start = time.perf_counter()
        ids.append(clustering.insert(point))
        insert_times.append(time.perf_counter() - start)
        insert_queries.append(clustering.last_cost.neighbor_queries)
    rng = random.Random(2)
    rng.shuffle(ids)
    delete_times, delete_queries = [], []
    for point_id in ids[: N_POINTS // 3]:
        start = time.perf_counter()
        clustering.delete(point_id)
        delete_times.append(time.perf_counter() - start)
        delete_queries.append(clustering.last_cost.neighbor_queries)
    return insert_times, insert_queries, delete_times, delete_queries


def test_insertions(benchmark):
    points = clustered_points(200, seed=3)

    def run():
        clustering = IncrementalDBSCAN(eps=EPS, min_pts=MIN_PTS, dim=2)
        for point in points:
            clustering.insert(point)
        return clustering

    clustering = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(clustering) == 200


def test_deletions(benchmark):
    points = clustered_points(200, seed=4)

    def run():
        clustering = IncrementalDBSCAN(eps=EPS, min_pts=MIN_PTS, dim=2)
        ids = [clustering.insert(p) for p in points]
        for point_id in ids[:60]:
            clustering.delete(point_id)
        return clustering

    clustering = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(clustering) == 140


def test_asymmetry_table_and_shape(benchmark):
    insert_times, insert_queries, delete_times, delete_queries = (
        benchmark.pedantic(measure_costs, rounds=1, iterations=1)
    )
    rows = [
        [
            "insert",
            f"{np.mean(insert_times) * 1e6:.0f}",
            f"{np.mean(insert_queries):.1f}",
        ],
        [
            "delete",
            f"{np.mean(delete_times) * 1e6:.0f}",
            f"{np.mean(delete_queries):.1f}",
        ],
    ]
    print_table(
        "Ablation: incremental DBSCAN per-operation cost "
        "(mean us / mean eps-queries)",
        ["operation", "time (us)", "eps-queries"],
        rows,
    )
    # §3.2.4's premise: deletion is the expensive direction.
    assert np.mean(delete_queries) > np.mean(insert_queries) * 1.5
    assert np.mean(delete_times) > np.mean(insert_times)


def test_gemm_vs_direct_window(benchmark):
    """GEMM keeps DBSCAN windows insert-only; the direct route eats the
    deletion cost every slide."""

    def run():
        blocks = [
            make_block(i + 1, clustered_points(150, seed=10 + i))
            for i in range(6)
        ]
        w = 3
        gemm_maintainer = IncrementalDBSCANMaintainer(EPS, MIN_PTS, dim=2)
        gemm = GEMM(gemm_maintainer, w=w)
        gemm_critical = []
        for block in blocks:
            report = gemm.observe(block)
            if gemm.is_warmed_up:
                gemm_critical.append(report.critical_seconds)

        direct_maintainer = IncrementalDBSCANMaintainer(EPS, MIN_PTS, dim=2)
        model = direct_maintainer.build(blocks[:1])
        direct_times = []
        for t, block in enumerate(blocks[1:], start=2):
            start = time.perf_counter()
            model = direct_maintainer.add_block(model, block)
            expired = t - w
            if expired >= 1:
                model = direct_maintainer.delete_block(model, blocks[expired - 1])
            if t > w:
                direct_times.append(time.perf_counter() - start)
        return gemm_critical, direct_times, gemm, model

    gemm_critical, direct_times, gemm, direct_model = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table(
        "GEMM vs direct add+delete for windowed DBSCAN (ms per slide)",
        ["route", "mean response"],
        [
            ["GEMM (insert-only)", f"{np.mean(gemm_critical) * 1e3:.1f}"],
            ["direct add+delete", f"{np.mean(direct_times) * 1e3:.1f}"],
        ],
    )
    # Both cover the same window in the end.
    assert sorted(gemm.current_selection()) == direct_model.selected_block_ids
    assert np.mean(gemm_critical) < np.mean(direct_times)
