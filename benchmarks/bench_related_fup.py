"""Related work (§6) — BORDERS vs the FUP baseline.

"The FUP algorithm ... makes several iterations and in each iteration,
it scans the entire database (including the new block and the old
dataset).  The BORDERS algorithm improves the FUP algorithm by reducing
the number of scans of the old database."

This benchmark maintains the same evolving workload with both
maintainers and compares (a) old-database bytes re-read per block
addition and (b) wall-clock, confirming BORDERS' advantage and that
both produce the identical frequent set.

Run:  pytest benchmarks/bench_related_fup.py --benchmark-only -s
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.common import print_table, quest_blocks, quest_increment
from repro.itemsets.borders import BordersMaintainer, ItemsetMiningContext
from repro.itemsets.fup import FUPMaintainer

DATASET = "2M.20L.1I.4pats.4plen"
MINSUP = 0.01
N_BASE_BLOCKS = 4
#: The paper's regime: a large old database, small increments (FUP's
#: per-level rescans then dwarf BORDERS' targeted counting).
INCREMENT_SIZE = 250
N_INCREMENTS = 2


def workload():
    base = list(quest_blocks(DATASET, N_BASE_BLOCKS, seed=8))
    increments = [
        quest_increment(
            DATASET, INCREMENT_SIZE, block_id=N_BASE_BLOCKS + 1 + i, seed=20 + i
        )
        for i in range(N_INCREMENTS)
    ]
    return base, increments


def run_borders():
    base, increments = workload()
    context = ItemsetMiningContext()
    maintainer = BordersMaintainer(MINSUP, context, counter="ecut")
    model = maintainer.build(base)
    step_times, old_bytes = [], []
    for block in increments:
        before = context.block_store.stats.bytes_read
        tid_before = context.tidlists.stats.bytes_read
        start = time.perf_counter()
        model = maintainer.add_block(model, block)
        step_times.append(time.perf_counter() - start)
        # Old-block *rescans*: block-store reads beyond the new block's
        # own scan.  BORDERS' old-data access is TID-list fetches, kept
        # separately.
        new_block_bytes = context.block_store.nbytes(block.block_id)
        scanned = context.block_store.stats.bytes_read - before
        fetched = context.tidlists.stats.bytes_read - tid_before
        old_bytes.append((max(scanned - new_block_bytes, 0), fetched))
    return model, step_times, old_bytes


def run_fup():
    base, increments = workload()
    context = ItemsetMiningContext()
    maintainer = FUPMaintainer(MINSUP, context)
    model = maintainer.build(base)
    step_times, old_bytes, scans = [], [], []
    for block in increments:
        before = context.block_store.stats.bytes_read
        start = time.perf_counter()
        model = maintainer.add_block(model, block)
        step_times.append(time.perf_counter() - start)
        new_block_bytes = context.block_store.nbytes(block.block_id)
        scanned = context.block_store.stats.bytes_read - before
        old_bytes.append(max(scanned - new_block_bytes, 0))
        scans.append(maintainer.last_stats.old_db_scans)
    return model, step_times, old_bytes, scans


def test_borders_maintenance(benchmark):
    model, _times, _bytes = benchmark.pedantic(run_borders, rounds=1, iterations=1)
    assert model.frequent


def test_fup_maintenance(benchmark):
    model, _times, _bytes, _scans = benchmark.pedantic(
        run_fup, rounds=1, iterations=1
    )
    assert model.frequent


def test_comparison_table_and_shape(benchmark):
    def sweep():
        return run_borders(), run_fup()

    (borders_model, borders_times, borders_bytes), (
        fup_model,
        fup_times,
        fup_bytes,
        fup_scans,
    ) = benchmark.pedantic(sweep, rounds=1, iterations=1)

    borders_rescans = [pair[0] for pair in borders_bytes]
    borders_fetches = [pair[1] for pair in borders_bytes]
    rows = [
        [
            "BORDERS+ECUT",
            f"{np.mean(borders_times) * 1e3:.0f}",
            f"{np.mean(borders_rescans) / 1024:.0f}",
            f"{np.mean(borders_fetches) / 1024:.0f}",
            "0",
        ],
        [
            "FUP",
            f"{np.mean(fup_times) * 1e3:.0f}",
            f"{np.mean(fup_bytes) / 1024:.0f}",
            "0",
            f"{np.mean(fup_scans):.1f}",
        ],
    ]
    print_table(
        "Related work: BORDERS vs FUP per block addition",
        ["maintainer", "mean step ms", "old blocks rescanned KiB",
         "TID-lists fetched KiB", "old-DB scans"],
        rows,
    )

    # Identical final models (FUP keeps no border, so compare L only).
    assert borders_model.frequent == fup_model.frequent
    # The §6 claim, structurally: FUP rescans the old database (once per
    # level with surviving candidates); BORDERS never does — its only
    # old-data access is targeted TID-list retrieval.
    assert np.mean(borders_rescans) == 0
    assert np.mean(fup_bytes) > 0
    assert np.mean(fup_scans) >= 1
    # And it is faster end to end on the small-increment regime.
    assert np.mean(borders_times) < np.mean(fup_times)
