"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of DEMON's §5 at laptop
scale.  Dataset *structure* (items, patterns, transaction length,
block-size *ratios*, support thresholds) follows the paper; absolute
sizes are scaled down by :data:`SCALE` (see DESIGN.md, substitutions).
Datasets are generated once per pytest session and cached here.

Set the environment variable ``DEMON_BENCH_SCALE`` to change the scale
(e.g. ``DEMON_BENCH_SCALE=0.01`` doubles the default dataset sizes).
"""

from __future__ import annotations

import os
import sys
from functools import lru_cache

from repro.core.blocks import Block, make_block
from repro.datagen.clusters import ClusterDataGenerator, ClusterDataParams
from repro.datagen.quest import QuestGenerator, QuestParams

#: Fraction of the paper's dataset sizes used by default (2M -> 10K).
SCALE = float(os.environ.get("DEMON_BENCH_SCALE", "0.005"))


def scaled(n_paper: int) -> int:
    """Scale one of the paper's absolute sizes."""
    return max(int(n_paper * SCALE), 10)


@lru_cache(maxsize=None)
def quest_blocks(
    name: str,
    n_blocks: int,
    seed: int = 0,
    first_block_id: int = 1,
) -> tuple[Block, ...]:
    """Blocks drawn from one Quest configuration, sizes already scaled.

    ``name`` is a paper-style dataset name; the named transaction count
    is split evenly across ``n_blocks`` blocks.
    """
    params = QuestParams.from_name(name, scale=SCALE)
    generator = QuestGenerator(params, seed=seed)
    per_block = max(params.n_transactions // n_blocks, 10)
    return tuple(
        generator.block(first_block_id + i, count=per_block)
        for i in range(n_blocks)
    )


@lru_cache(maxsize=None)
def quest_increment(
    name: str, count: int, block_id: int, seed: int = 1
) -> Block:
    """One additional block with its own distribution parameters."""
    params = QuestParams.from_name(name, scale=SCALE)
    generator = QuestGenerator(params, seed=seed)
    return generator.block(block_id, count=count)


@lru_cache(maxsize=None)
def cluster_points(name: str, count: int, seed: int = 0, noise: float = 0.02):
    """Points from one cluster-data configuration (tuple, cached)."""
    params = ClusterDataParams.from_name(name, scale=SCALE, noise_fraction=noise)
    generator = ClusterDataGenerator(params, seed=seed)
    return tuple(generator.points(count))


def points_block(name: str, count: int, block_id: int, seed: int = 0) -> Block:
    """A block of cluster points."""
    return make_block(block_id, cluster_points(name, count, seed=seed))


#: File every paper-style table is appended to (the benchmark run's
#: primary artifact — pytest captures stdout, so stdout alone would
#: lose the tables).  Override with DEMON_BENCH_TABLES; truncated at
#: the start of each pytest session by benchmarks/conftest.py.
TABLES_PATH = os.environ.get(
    "DEMON_BENCH_TABLES",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "bench_tables.txt"),
)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Emit one paper-style results table.

    The table goes to stdout (visible with ``pytest -s``) *and* is
    appended to :data:`TABLES_PATH` — these rows are the benchmark's
    deliverable, and pytest's default capture must not swallow them.
    """
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    rendered = [
        f"\n{title}",
        "=" * len(line),
        line,
        "-" * len(line),
    ]
    rendered.extend(
        "  ".join(str(v).ljust(w) for v, w in zip(row, widths)) for row in rows
    )
    text = "\n".join(rendered)
    print(text)
    with open(TABLES_PATH, "a") as sink:
        sink.write(text + "\n")


def fmt_ms(seconds: float) -> str:
    """Milliseconds with one decimal, as a string."""
    return f"{seconds * 1e3:.1f}"


#: Machine-readable rows collected by :func:`emit_json` during one
#: benchmark session.  benchmarks/conftest.py writes them out as a
#: single JSON document when ``--json PATH`` (or ``DEMON_BENCH_JSON``)
#: is given; otherwise collection is free and nothing is written.
JSON_ROWS: list[dict] = []


def emit_json(bench: str, **fields) -> None:
    """Collect one machine-readable benchmark row.

    ``bench`` names the benchmark (e.g. ``fig2_counting``); ``fields``
    are flat JSON-serializable measurements (times in seconds, byte
    counts as ints).  Rows complement :func:`print_table` — the table is
    for humans, the JSON for CI perf gates and regression tracking.
    """
    row: dict = {"bench": bench}
    row.update(fields)
    JSON_ROWS.append(row)


def write_json(path: str) -> None:
    """Write all collected rows as one JSON document.

    The document records :data:`SCALE` so a baseline regenerated at a
    different ``DEMON_BENCH_SCALE`` is never compared apples-to-oranges.
    Row order is collection order (deterministic under pytest's stable
    test ordering).
    """
    import json

    document = {
        "schema": 1,
        "scale": SCALE,
        "rows": JSON_ROWS,
    }
    with open(path, "w") as sink:
        json.dump(document, sink, indent=2, sort_keys=True)
        sink.write("\n")
