"""Figure 10 — per-block incremental pattern-computation time.

Paper setup: the proxy trace cut into 6-hour blocks (the paper's 82
blocks); the plot shows the time to fold each new block into the set of
compact sequences.  The spikes are blocks that differ from a large
share of their history: deviation computation against a dissimilar
block must scan the data (regions missing from the other model), while
similar blocks are compared from their models alone — and the spike
positions fall on the weekend boundaries.

Run:  pytest benchmarks/bench_fig10_pattern_time.py --benchmark-only -s
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import print_table
from repro.core.session import MiningSession
from repro.datagen.proxytrace import ProxyTraceGenerator
from repro.deviation.focus import ItemsetDeviation
from repro.deviation.similarity import BlockSimilarity
from repro.patterns.compact import CompactSequenceMiner

SCALE = 0.03
GRANULARITY = 6
MINSUP = 0.02


def run_stream():
    """Feed the whole 6-hour stream through a detection-only session;
    collect the per-block pattern reports."""
    blocks = ProxyTraceGenerator(scale=SCALE, seed=4).blocks(GRANULARITY)
    similarity = BlockSimilarity(
        ItemsetDeviation(minsup=MINSUP, max_size=2), alpha=0.95, method="chi2"
    )
    session = MiningSession(pattern_miner=CompactSequenceMiner(similarity))
    reports = [session.observe(block).patterns for block in blocks]
    # Telemetry parity: the spine's counters aggregate what the
    # per-block reports carry.
    snapshot = session.telemetry.snapshot()
    assert snapshot.counter("patterns.comparisons") == sum(
        report.comparisons for report in reports
    )
    assert snapshot.counter("patterns.missing_regions") == sum(
        report.missing_regions for report in reports
    )
    assert snapshot.phase_calls("patterns.observe") == len(blocks)
    return blocks, session.pattern_miner, reports


def test_fig10_stream(benchmark):
    blocks, _miner, reports = benchmark.pedantic(
        run_stream, rounds=1, iterations=1
    )
    assert len(reports) == len(blocks)


def test_fig10_series_and_spikes(benchmark):
    """Print the per-block time series and assert the spike shape."""
    blocks, miner, reports = benchmark.pedantic(
        run_stream, rounds=1, iterations=1
    )

    rows = [
        [
            report.t,
            blocks[report.t - 1].label,
            f"{report.seconds * 1e3:.1f}",
            report.missing_regions,
            report.comparisons,
        ]
        for report in reports
        if report.t % 4 == 1  # print one row per day to keep it readable
    ]
    print_table(
        "Figure 10: per-block pattern-computation time (6-hour blocks)",
        ["block", "label", "time ms", "missing regions", "comparisons"],
        rows,
    )

    # Classify blocks: weekend-side (weekend/holiday/anomaly) vs the
    # plain working-day daytime majority.
    def is_minority(block):
        meta = block.metadata
        return meta["weekday"] >= 5 or meta["holiday"] or meta["anomaly"]

    # Normalize per-comparison cost: later blocks compare against a
    # longer history, so use scanned-regions per comparison as the
    # spike signal (that is the work a dissimilar block induces).
    minority_rate = [
        reports[i].missing_regions / max(reports[i].comparisons, 1)
        for i, block in enumerate(blocks)
        if is_minority(block) and reports[i].comparisons >= 8
    ]
    majority_rate = [
        reports[i].missing_regions / max(reports[i].comparisons, 1)
        for i, block in enumerate(blocks)
        if not is_minority(block) and reports[i].comparisons >= 8
    ]
    assert minority_rate and majority_rate
    # Spike shape: blocks unlike the (working-day-dominated) history
    # force more regions to be measured by scanning.
    assert np.mean(minority_rate) > np.mean(majority_rate) * 1.3

    # The maintained sequences stay internally consistent.
    assert miner.verify_all_compact() == []
